"""Secure boot (§IV-A) and the attestation verifier (§VI-C)."""

import dataclasses

import pytest

from repro.crypto.cert import Certificate, verify_chain
from repro.crypto.ed25519 import ed25519_sign, ed25519_verify
from repro.sm.attestation import (
    AttestationReport,
    attestation_message,
    verify_attestation,
)
from repro.sm.boot import (
    measure_sm_image,
    provision_device,
    secure_boot,
    sm_image_bytes,
)
from repro.util.rng import DeterministicTRNG


@pytest.fixture
def boot_pair():
    provisioning = provision_device(DeterministicTRNG(1))
    return provisioning, secure_boot(provisioning, sm_image=b"the-sm-binary")


# ---------------------------------------------------------------------------
# Secure boot
# ---------------------------------------------------------------------------

def test_keys_deterministic_in_device_and_image(boot_pair):
    provisioning, boot = boot_pair
    again = secure_boot(provisioning, sm_image=b"the-sm-binary")
    assert again.sm_secret_key == boot.sm_secret_key
    assert again.sm_public_key == boot.sm_public_key


def test_different_sm_image_different_keys(boot_pair):
    provisioning, boot = boot_pair
    patched = secure_boot(provisioning, sm_image=b"the-sm-binary-v2")
    assert patched.sm_measurement != boot.sm_measurement
    assert patched.sm_secret_key != boot.sm_secret_key, (
        "a patched SM cannot impersonate the measured one"
    )


def test_different_device_different_keys():
    a = secure_boot(provision_device(DeterministicTRNG(1)), sm_image=b"sm")
    b = secure_boot(provision_device(DeterministicTRNG(2)), sm_image=b"sm")
    assert a.sm_secret_key != b.sm_secret_key


def test_certificate_chain_roots_in_manufacturer(boot_pair):
    provisioning, boot = boot_pair
    leaf = verify_chain(
        [boot.device_certificate, boot.sm_certificate], provisioning.root_public
    )
    assert leaf.subject == "sm"
    assert leaf.subject_key == boot.sm_public_key
    assert leaf.measurement == boot.sm_measurement


def test_sm_image_bytes_is_the_actual_source():
    image = sm_image_bytes()
    assert b"api.py" in image and b"class SecurityMonitor" in image
    assert measure_sm_image(image) == measure_sm_image(sm_image_bytes())


# ---------------------------------------------------------------------------
# The attestation verifier
# ---------------------------------------------------------------------------

def _report(boot, nonce=b"\x07" * 32, measurement=b"\x42" * 64, signature=None):
    if signature is None:
        signature = ed25519_sign(
            boot.sm_secret_key, attestation_message(nonce, measurement)
        )
    return AttestationReport(
        nonce=nonce,
        enclave_measurement=measurement,
        signature=signature,
        sm_certificate=boot.sm_certificate,
        device_certificate=boot.device_certificate,
    )


def test_valid_report_verifies(boot_pair):
    provisioning, boot = boot_pair
    report = _report(boot)
    result = verify_attestation(
        report,
        provisioning.root_public,
        expected_nonce=b"\x07" * 32,
        expected_enclave_measurement=b"\x42" * 64,
        expected_sm_measurement=boot.sm_measurement,
    )
    assert result.ok, result.reason
    assert result.sm_measurement == boot.sm_measurement


def test_wrong_nonce_rejected(boot_pair):
    provisioning, boot = boot_pair
    result = verify_attestation(_report(boot), provisioning.root_public, b"\x08" * 32)
    assert not result.ok and "nonce" in result.reason


def test_wrong_enclave_measurement_rejected(boot_pair):
    provisioning, boot = boot_pair
    result = verify_attestation(
        _report(boot),
        provisioning.root_public,
        b"\x07" * 32,
        expected_enclave_measurement=b"\x43" * 64,
    )
    assert not result.ok and "enclave measurement" in result.reason


def test_tampered_signature_rejected(boot_pair):
    provisioning, boot = boot_pair
    bad = bytearray(_report(boot).signature)
    bad[0] ^= 1
    result = verify_attestation(
        _report(boot, signature=bytes(bad)), provisioning.root_public, b"\x07" * 32
    )
    assert not result.ok and "signature" in result.reason


def test_wrong_root_rejected(boot_pair):
    __, boot = boot_pair
    other = provision_device(DeterministicTRNG(99))
    result = verify_attestation(_report(boot), other.root_public, b"\x07" * 32)
    assert not result.ok and "chain" in result.reason


def test_foreign_sm_key_rejected(boot_pair):
    """A signature by a *different* (even honestly booted) SM fails."""
    provisioning, boot = boot_pair
    rogue_boot = secure_boot(provisioning, sm_image=b"rogue-sm")
    nonce, measurement = b"\x07" * 32, b"\x42" * 64
    signature = ed25519_sign(
        rogue_boot.sm_secret_key, attestation_message(nonce, measurement)
    )
    # Present the rogue signature under the genuine SM's certificate.
    result = verify_attestation(
        _report(boot, signature=signature), provisioning.root_public, nonce
    )
    assert not result.ok


def test_sm_measurement_pinning(boot_pair):
    """A verifier pinning a specific SM build rejects other builds."""
    provisioning, boot = boot_pair
    rogue_boot = secure_boot(provisioning, sm_image=b"rogue-sm")
    report = _report(rogue_boot)
    result = verify_attestation(
        report,
        provisioning.root_public,
        b"\x07" * 32,
        expected_sm_measurement=boot.sm_measurement,
    )
    assert not result.ok and "SM measurement" in result.reason


def test_report_serialization_roundtrip(boot_pair):
    __, boot = boot_pair
    report = _report(boot)
    assert AttestationReport.from_bytes(report.to_bytes()) == report


def test_report_parsing_rejects_malformed(boot_pair):
    __, boot = boot_pair
    data = _report(boot).to_bytes()
    with pytest.raises(ValueError):
        AttestationReport.from_bytes(data[:-1])
    with pytest.raises(ValueError):
        AttestationReport.from_bytes(data + b"\x00")


def test_attestation_message_validates_sizes():
    with pytest.raises(ValueError):
        attestation_message(b"short", b"\x00" * 64)
    with pytest.raises(ValueError):
        attestation_message(b"\x00" * 32, b"short")
