"""The delegated-event queue and trap-classification helpers."""

from repro.hw.traps import Trap, TrapCause
from repro.sm.events import (
    OsEvent,
    OsEventKind,
    OsEventQueue,
    fault_is_enclave_handled,
)


def test_queue_fifo_per_core():
    queue = OsEventQueue(2)
    queue.post(OsEvent(0, OsEventKind.AEX))
    queue.post(OsEvent(0, OsEventKind.ENCLAVE_EXIT))
    queue.post(OsEvent(1, OsEventKind.SYSCALL))
    assert queue.pending(0) == 2 and queue.pending(1) == 1
    assert queue.take(0).kind is OsEventKind.AEX
    assert queue.take(0).kind is OsEventKind.ENCLAVE_EXIT
    assert queue.take(0) is None
    assert queue.take(1).kind is OsEventKind.SYSCALL


def test_queue_drain():
    queue = OsEventQueue(1)
    for __ in range(3):
        queue.post(OsEvent(0, OsEventKind.INTERRUPT))
    drained = queue.drain(0)
    assert len(drained) == 3 and queue.pending(0) == 0


def test_fault_routing_decision_table():
    evrange = (0x40000000, 0x1000)
    inside = Trap(TrapCause.PAGE_FAULT_LOAD, tval=0x40000800)
    outside = Trap(TrapCause.PAGE_FAULT_LOAD, tval=0x100)
    interrupt = Trap(TrapCause.TIMER_INTERRUPT)
    access = Trap(TrapCause.ACCESS_FAULT_LOAD, tval=0x40000800)

    # Enclave-handled: page fault, inside evrange, handler installed.
    assert fault_is_enclave_handled(inside, evrange, has_handler=True)
    # No handler -> AEX.
    assert not fault_is_enclave_handled(inside, evrange, has_handler=False)
    # Outside evrange -> OS business.
    assert not fault_is_enclave_handled(outside, evrange, has_handler=True)
    # Non-page-fault causes always delegate.
    assert not fault_is_enclave_handled(interrupt, evrange, has_handler=True)
    assert not fault_is_enclave_handled(access, evrange, has_handler=True)


def test_trap_cause_taxonomy():
    assert TrapCause.TIMER_INTERRUPT.is_interrupt
    assert not TrapCause.ECALL_FROM_U.is_interrupt
    assert TrapCause.ECALL_FROM_U.is_ecall and TrapCause.ECALL_FROM_S.is_ecall
    assert TrapCause.PAGE_FAULT_STORE.is_page_fault
    assert not TrapCause.ACCESS_FAULT_STORE.is_page_fault
    assert "page_fault_store" in str(Trap(TrapCause.PAGE_FAULT_STORE, tval=4, pc=8))
