"""The LOC counter: counting discipline and report shape."""

import pathlib
import textwrap

from repro.analysis.loc import (
    CATEGORY_PACKAGES,
    LAYER_FILES,
    count_loc,
    loc_report,
)


def _count(tmp_path: pathlib.Path, source: str) -> int:
    path = tmp_path / "sample.py"
    path.write_text(textwrap.dedent(source))
    return count_loc(path)


def test_blank_lines_and_comments_not_counted(tmp_path):
    assert _count(
        tmp_path,
        """
        # a comment

        x = 1
        # another
        y = 2  # trailing comment still counts the line
        """,
    ) == 2


def test_docstrings_not_counted(tmp_path):
    assert _count(
        tmp_path,
        '''
        """Module docstring
        spanning lines."""

        def f():
            """Function docstring."""
            return 1
        ''',
    ) == 2  # def line + return line


def test_string_expressions_mid_function_count(tmp_path):
    # A string used as a value is code, not a docstring.
    assert _count(
        tmp_path,
        """
        def f():
            x = "not a docstring"
            return x
        """,
    ) == 3


def test_multiline_statement_counts_every_line(tmp_path):
    assert _count(
        tmp_path,
        """
        value = (1 +
                 2 +
                 3)
        """,
    ) == 3


def test_report_covers_every_source_package():
    report = loc_report()
    categorized = {pkg for pkgs in CATEGORY_PACKAGES.values() for pkg in pkgs}
    for package in categorized:
        assert report.per_package.get(package, 0) > 0, f"{package} vanished"
    assert report.total == sum(report.per_package.values())
    assert report.sm_total == (
        report.per_category["sm_core"]
        + report.per_category["crypto_and_support"]
        + report.per_category["platform_specific"]
    )
    assert 0 < report.core_fraction() < 1


def test_report_breaks_out_the_dispatch_layers():
    report = loc_report()
    assert set(report.per_layer) == set(LAYER_FILES)
    for layer, loc in report.per_layer.items():
        assert loc > 0, f"{layer} vanished"
    # The declarative layers stay small relative to the handlers —
    # the measurable form of the refactor's "thin surface" claim.
    handlers = report.per_layer["handlers (sm/api.py)"]
    assert report.per_layer["pipeline (sm/pipeline.py)"] < handlers / 4
    assert report.per_layer["registry (sm/abi.py)"] < handlers
    assert report.per_layer["compartments (sm/compartments.py)"] < handlers
    # Layer files are sm_core files, so the layers nest inside it.
    assert sum(report.per_layer.values()) < report.per_category["sm_core"]
