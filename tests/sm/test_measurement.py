"""Enclave measurement properties (§VI-A)."""

from repro import build_sanctum_system, image_from_assembly
from repro.errors import ApiResult
from repro.hw.core import DOMAIN_UNTRUSTED
from repro.hw.memory import PAGE_SHIFT, PAGE_SIZE
from repro.hw.paging import PTE_R, PTE_W, PTE_X
from repro.sdk.measure import predict_measurement
from tests.conftest import small_config

OS = DOMAIN_UNTRUSTED
RWX = PTE_R | PTE_W | PTE_X


def _image(body="entry:\n    li a0, 0\n    ecall\n", **kwargs):
    return image_from_assembly(body, **kwargs)


def test_equivalent_enclaves_equal_measurements(any_system):
    image = _image()
    a = any_system.kernel.load_enclave(image)
    b = any_system.kernel.load_enclave(image)
    assert any_system.sm.enclave_measurement(a.eid) == any_system.sm.enclave_measurement(b.eid)


def test_physical_placement_not_measured(any_system):
    """The same image at *different* physical addresses measures equal."""
    image = _image()
    a = any_system.kernel.load_enclave(image)
    b = any_system.kernel.load_enclave(image)
    assert a.region_base != b.region_base
    assert any_system.sm.enclave_measurement(a.eid) == any_system.sm.enclave_measurement(b.eid)


def test_code_change_changes_measurement(any_system):
    a = any_system.kernel.load_enclave(_image())
    b = any_system.kernel.load_enclave(
        _image("entry:\n    nop\n    li a0, 0\n    ecall\n")
    )
    assert any_system.sm.enclave_measurement(a.eid) != any_system.sm.enclave_measurement(b.eid)


def test_evrange_is_measured(any_system):
    a = any_system.kernel.load_enclave(_image(evrange_base=0x40000000))
    b = any_system.kernel.load_enclave(_image(evrange_base=0x50000000))
    assert any_system.sm.enclave_measurement(a.eid) != any_system.sm.enclave_measurement(b.eid)


def test_mailbox_count_is_measured(any_system):
    a = any_system.kernel.load_enclave(_image(num_mailboxes=1))
    b = any_system.kernel.load_enclave(_image(num_mailboxes=2))
    assert any_system.sm.enclave_measurement(a.eid) != any_system.sm.enclave_measurement(b.eid)


def test_thread_configuration_is_measured(any_system):
    body = "entry:\n    nop\nalso:\n    li a0, 0\n    ecall\n"
    a = any_system.kernel.load_enclave(_image(body, entry_symbol="entry"))
    b = any_system.kernel.load_enclave(_image(body, entry_symbol="also"))
    assert any_system.sm.enclave_measurement(a.eid) != any_system.sm.enclave_measurement(b.eid)


def test_acl_is_measured(any_system):
    """Same bytes loaded with different permissions measure differently."""
    sm = any_system.sm
    kernel = any_system.kernel
    measurements = []
    for acl in (PTE_R | PTE_X, RWX):
        eid = sm.state.suggest_metadata(4096)
        assert sm.create_enclave(OS, eid, 0x40000000, 0x10000, 1) is ApiResult.OK
        base, _, _ = kernel.donate_memory(eid, 8 * PAGE_SIZE)
        staging = kernel.alloc_frame() << PAGE_SHIFT
        sm.allocate_page_table(OS, eid, 0, 1, base)
        sm.allocate_page_table(OS, eid, 0x40000000, 0, base + PAGE_SIZE)
        assert sm.load_page(OS, eid, 0x40000000, base + 2 * PAGE_SIZE, staging, acl) is ApiResult.OK
        assert sm.init_enclave(OS, eid) is ApiResult.OK
        measurements.append(sm.enclave_measurement(eid))
    assert measurements[0] != measurements[1]


def test_measurement_binds_sm_identity():
    """Different SM images yield different enclave measurements."""
    image = _image()
    a = build_sanctum_system(config=small_config(), sm_image=b"SM-v1")
    b = build_sanctum_system(config=small_config(), sm_image=b"SM-v2")
    ea = a.kernel.load_enclave(image)
    eb = b.kernel.load_enclave(image)
    assert a.sm.enclave_measurement(ea.eid) != b.sm.enclave_measurement(eb.eid)


def test_measurement_binds_platform(sanctum_system, keystone_system):
    image = _image()
    a = sanctum_system.kernel.load_enclave(image)
    b = keystone_system.kernel.load_enclave(image)
    assert (
        sanctum_system.sm.enclave_measurement(a.eid)
        != keystone_system.sm.enclave_measurement(b.eid)
    )


def test_offline_prediction_matches_sm(any_system):
    image = _image(
        "entry:\nhandler:\n    li a0, 0\n    ecall\n",
        entry_symbol="entry",
        fault_symbol="handler",
        num_mailboxes=3,
    )
    predicted = predict_measurement(
        image, any_system.boot.sm_measurement, any_system.platform.name
    )
    loaded = any_system.kernel.load_enclave(image)
    assert any_system.sm.enclave_measurement(loaded.eid) == predicted


def test_offline_prediction_with_extra_threads(any_system):
    image = _image()
    predicted = predict_measurement(
        image, any_system.boot.sm_measurement, any_system.platform.name, extra_threads=2
    )
    loaded = any_system.kernel.load_enclave(image, extra_threads=2)
    assert any_system.sm.enclave_measurement(loaded.eid) == predicted
    assert len(loaded.tids) == 3


def test_measurement_unavailable_before_init(any_system):
    sm = any_system.sm
    eid = sm.state.suggest_metadata(4096)
    sm.create_enclave(OS, eid, 0x40000000, PAGE_SIZE, 1)
    assert sm.enclave_measurement(eid) is None
