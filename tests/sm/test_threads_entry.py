"""Thread lifecycle (Fig. 4) and enter/exit scheduling rules."""

from repro import image_from_assembly
from repro.errors import ApiResult
from repro.hw.core import DOMAIN_UNTRUSTED
from repro.sm.resources import ResourceState, ResourceType
from repro.sm.thread import ThreadState
from tests.conftest import trivial_enclave_image

OS = DOMAIN_UNTRUSTED


def test_enter_requires_initialized_enclave(any_system):
    sm = any_system.sm
    eid = sm.state.suggest_metadata(4096)
    sm.create_enclave(OS, eid, 0x40000000, 4096, 1)
    tid = sm.state.suggest_metadata(512)
    assert sm.create_thread(OS, eid, tid, 0x40000000, 0) is ApiResult.OK
    assert sm.enter_enclave(OS, eid, tid, 0) is ApiResult.INVALID_STATE


def test_enter_validates_identifiers(any_system):
    sm = any_system.sm
    loaded = any_system.kernel.load_enclave(trivial_enclave_image())
    assert sm.enter_enclave(OS, 0xBAD, loaded.tids[0], 0) is ApiResult.UNKNOWN_RESOURCE
    assert sm.enter_enclave(OS, loaded.eid, 0xBAD, 0) is ApiResult.UNKNOWN_RESOURCE
    assert sm.enter_enclave(OS, loaded.eid, loaded.tids[0], 99) is ApiResult.INVALID_VALUE


def test_enter_rejects_foreign_thread(any_system):
    sm = any_system.sm
    kernel = any_system.kernel
    a = kernel.load_enclave(trivial_enclave_image())
    b = kernel.load_enclave(trivial_enclave_image(value=7))
    assert sm.enter_enclave(OS, a.eid, b.tids[0], 0) is ApiResult.INVALID_STATE


def test_enter_rejects_busy_core(any_system):
    sm = any_system.sm
    kernel = any_system.kernel
    spinner = kernel.load_enclave(image_from_assembly("entry:\nloop: jal zero, loop"))
    other = kernel.load_enclave(trivial_enclave_image())
    assert sm.enter_enclave(OS, spinner.eid, spinner.tids[0], 0) is ApiResult.OK
    assert sm.enter_enclave(OS, other.eid, other.tids[0], 0) is ApiResult.INVALID_STATE
    # Clean up: interrupt the spinner.
    kernel.machine.interrupts.send_ipi(0)
    kernel.machine.run_core(0, 100)
    sm.os_events.drain(0)


def test_thread_create_validates_entry_point(any_system):
    sm = any_system.sm
    eid = sm.state.suggest_metadata(4096)
    sm.create_enclave(OS, eid, 0x40000000, 0x10000, 1)
    tid = sm.state.suggest_metadata(512)
    assert sm.create_thread(OS, eid, tid, 0x90000000, 0) is ApiResult.INVALID_VALUE
    assert (
        sm.create_thread(OS, eid, tid, 0x40000000, 0, fault_pc=0x90000000)
        is ApiResult.INVALID_VALUE
    )


def test_thread_block_clean_regrant_cycle(any_system):
    """Fig. 4: a thread moves between enclaves through block/clean/grant."""
    sm = any_system.sm
    kernel = any_system.kernel
    a = kernel.load_enclave(trivial_enclave_image())
    b = kernel.load_enclave(trivial_enclave_image(value=9))
    tid = a.tids[0]
    # The owner (enclave a) blocks its thread — simulate via caller=a.eid.
    assert sm.block_resource(a.eid, ResourceType.THREAD, tid) is ApiResult.OK
    assert sm.state.thread(tid).state is ThreadState.BLOCKED
    assert sm.clean_resource(OS, ResourceType.THREAD, tid) is ApiResult.OK
    assert sm.state.thread(tid).state is ThreadState.FREE
    # Grant to the (initialized) enclave b: goes through OFFERED.
    assert sm.grant_resource(OS, ResourceType.THREAD, tid, b.eid) is ApiResult.OK
    record = sm.state.resources.get(ResourceType.THREAD, tid)
    assert record.state is ResourceState.OFFERED
    # b accepts (paper: accept_thread(tid)).
    assert sm.accept_thread(b.eid, tid) is ApiResult.OK
    thread = sm.state.thread(tid)
    assert thread.owner_eid == b.eid and thread.state is ThreadState.ASSIGNED
    assert tid in sm.state.enclave(b.eid).thread_tids


def test_cleaned_thread_has_no_residual_state(any_system):
    sm = any_system.sm
    kernel = any_system.kernel
    spinner = kernel.load_enclave(image_from_assembly("entry:\nloop: jal zero, loop"))
    tid = spinner.tids[0]
    sm.enter_enclave(OS, spinner.eid, tid, 0)
    kernel.machine.interrupts.send_ipi(0)
    kernel.machine.run_core(0, 100)
    sm.os_events.drain(0)
    thread = sm.state.thread(tid)
    assert thread.aex_present, "AEX dump exists before cleaning"
    assert sm.block_resource(spinner.eid, ResourceType.THREAD, tid) is ApiResult.OK
    assert sm.clean_resource(OS, ResourceType.THREAD, tid) is ApiResult.OK
    assert not thread.aex_present
    assert thread.aex_state.regs == [0] * 16


def test_scheduled_thread_cannot_be_blocked(any_system):
    sm = any_system.sm
    kernel = any_system.kernel
    spinner = kernel.load_enclave(image_from_assembly("entry:\nloop: jal zero, loop"))
    tid = spinner.tids[0]
    sm.enter_enclave(OS, spinner.eid, tid, 0)
    assert sm.block_resource(spinner.eid, ResourceType.THREAD, tid) is ApiResult.INVALID_STATE
    kernel.machine.interrupts.send_ipi(0)
    kernel.machine.run_core(0, 100)
    sm.os_events.drain(0)


def test_two_threads_on_two_cores(any_system):
    sm = any_system.sm
    kernel = any_system.kernel
    out = kernel.alloc_buffer(1)
    image = image_from_assembly(
        f"""
entry:
    lw   t0, {out}(zero)
    addi t0, t0, 1
    sw   t0, {out}(zero)
    li   a0, 0
    ecall
"""
    )
    loaded = kernel.load_enclave(image, extra_threads=1)
    assert sm.enter_enclave(OS, loaded.eid, loaded.tids[0], 0) is ApiResult.OK
    assert sm.enter_enclave(OS, loaded.eid, loaded.tids[1], 1) is ApiResult.OK
    assert sm.state.enclave(loaded.eid).scheduled_threads == 2
    kernel.machine.run()
    # The increment is not atomic, so the interleaving may lose one
    # update — but both threads ran and exited.
    assert kernel.machine.memory.read_u32(out) in (1, 2)
    assert sm.state.enclave(loaded.eid).scheduled_threads == 0
    exits = [e for c in (0, 1) for e in sm.os_events.drain(c)]
    assert len(exits) == 2
