"""Property-based fuzzing of the SM API surface.

The monitor must be *total* over its API: whatever the untrusted OS
throws at it — garbage ids, misaligned addresses, out-of-order calls —
every call returns an :class:`ApiResult` (never an exception), and the
SM's security invariants hold after every single call.

Hypothesis drives random call sequences; shrinking produces minimal
violating sequences when something breaks.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import build_sanctum_system
from repro.errors import ApiResult
from repro.hw.core import DOMAIN_SM, DOMAIN_UNTRUSTED
from repro.hw.machine import MachineConfig
from repro.sm.invariants import check_all
from repro.sm.resources import ResourceType

OS = DOMAIN_UNTRUSTED

#: Values chosen to hit real ids often (arenas start at 0x10000 on the
#: small config) but also exercise garbage.
_IDS = st.sampled_from(
    [0, 1, 0x40, 0x10000, 0x10040, 0x10400, 0x12345, 0x7FFFFFFF, -1]
)
_ADDRS = st.sampled_from(
    [0, 0x1000, 0x10000, 0x40000000, 0x40000001, 0x7FFFF000, 0xFFFFF000]
)
_SMALL = st.integers(min_value=-2, max_value=20)
_RTYPES = st.sampled_from(list(ResourceType))
_CALLERS = st.sampled_from([OS, DOMAIN_SM, 0x10000, 0x99999])

_CALL = st.one_of(
    st.tuples(st.just("create_enclave"), _CALLERS, _IDS, _ADDRS, _ADDRS, _SMALL),
    st.tuples(st.just("create_enclave_region"), _CALLERS, _IDS, _ADDRS, _ADDRS),
    st.tuples(st.just("allocate_page_table"), _CALLERS, _IDS, _ADDRS, _SMALL, _ADDRS),
    st.tuples(st.just("load_page"), _CALLERS, _IDS, _ADDRS, _ADDRS, _ADDRS, _SMALL),
    st.tuples(st.just("create_thread"), _CALLERS, _IDS, _IDS, _ADDRS, _ADDRS),
    st.tuples(st.just("init_enclave"), _CALLERS, _IDS),
    st.tuples(st.just("delete_enclave"), _CALLERS, _IDS),
    st.tuples(st.just("enter_enclave"), _CALLERS, _IDS, _IDS, _SMALL),
    st.tuples(st.just("block_resource"), _CALLERS, _RTYPES, _IDS),
    st.tuples(st.just("clean_resource"), _CALLERS, _RTYPES, _IDS),
    st.tuples(st.just("grant_resource"), _CALLERS, _RTYPES, _IDS, _IDS),
    st.tuples(st.just("accept_resource"), _CALLERS, _RTYPES, _IDS),
    st.tuples(st.just("accept_mail"), _CALLERS, _SMALL, _IDS),
    st.tuples(st.just("send_mail"), _CALLERS, _IDS, st.binary(max_size=300)),
    st.tuples(st.just("get_mail"), _CALLERS, _SMALL),
    st.tuples(st.just("get_field"), _CALLERS, _SMALL),
    st.tuples(st.just("get_random"), _CALLERS, _SMALL),
    st.tuples(st.just("get_attestation_key"), _CALLERS),
    st.tuples(st.just("get_sealing_key"), _CALLERS),
    st.tuples(st.just("accept_thread"), _CALLERS, _IDS),
    st.tuples(st.just("create_metadata_region"), _CALLERS, _SMALL),
)


@given(st.lists(_CALL, max_size=25))
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_api_is_total_and_invariant_preserving(calls):
    system = build_sanctum_system(
        config=MachineConfig(n_cores=2, dram_size=16 * 1024 * 1024, llc_sets=256),
        n_regions=4,
    )
    sm = system.sm
    for call in calls:
        name, args = call[0], call[1:]
        result = getattr(sm, name)(*args)
        # Calls returning tuples carry (result, payload).
        code = result[0] if isinstance(result, tuple) else result
        assert isinstance(code, ApiResult), f"{name}{args} returned {result!r}"
        check_all(sm)


#: Ops that, when they legitimately succeed for the OS, move shared
#: resources (cores, regions, enclaves) — a *well-formed* OS action, not
#: garbage, and out of scope for the perturbation property below.
_SHARED_STATE_OPS = frozenset(
    {
        "delete_enclave",
        "enter_enclave",
        "block_resource",
        "clean_resource",
        "grant_resource",
        "accept_resource",
        "accept_thread",
    }
)


def _run_garbage(sm, calls):
    for call in calls:
        result = getattr(sm, call[0])(*call[1:])
        primary = result[0] if isinstance(result, tuple) else result
        # The id pools deliberately include live ids, so the generator
        # occasionally emits a legal destructive call (e.g. a real
        # delete_enclave).  That is legitimate OS behaviour, not junk:
        # reject the example rather than mistake it for a violation.
        assume(not (call[0] in _SHARED_STATE_OPS and primary is ApiResult.OK))


@given(st.lists(_CALL, max_size=15), st.lists(_CALL, max_size=15))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_garbage_calls_never_perturb_a_real_enclave(prefix, suffix):
    """A correctly loaded enclave works no matter what junk surrounds it."""
    from tests.conftest import trivial_enclave_image

    system = build_sanctum_system(
        config=MachineConfig(n_cores=2, dram_size=16 * 1024 * 1024, llc_sets=256),
        n_regions=4,
    )
    sm = system.sm
    _run_garbage(sm, prefix)
    out = system.kernel.alloc_buffer(1)
    loaded = system.kernel.load_enclave(trivial_enclave_image(out, value=777))
    measurement = sm.enclave_measurement(loaded.eid)
    _run_garbage(sm, suffix)
    # The adversarial churn must not have changed the enclave state.
    assert sm.enclave_measurement(loaded.eid) == measurement
    events = system.kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert system.machine.memory.read_u32(out) == 777
    check_all(sm)
