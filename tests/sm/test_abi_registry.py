"""The ABI registry is the single source of truth for the SM surface.

Three properties keep the declarative table honest:

* **Coverage** — every public ``SecurityMonitor`` method taking a
  ``caller`` is registered (an unregistered public API method fails
  here, and therefore fails CI), and every registry entry resolves to
  a real wrapper + validate/raw handler pair.
* **Yield-site fidelity** — the sites the pipeline actually fires
  match each spec's declared ``yield_sites`` exactly: every
  lock-taking call gets ``<name>.validated`` then ``<name>.locked``;
  lock-free calls get only ``.validated``; no handler hand-rolls a
  ``_yield_point`` call of its own.
* **Derivation** — the SDK assembler stubs and the fuzzer's op table
  are generated from the registry, so a new entry propagates to both
  with no further code.
"""

from __future__ import annotations

import inspect

from repro.errors import ApiResult
from repro.hw.core import DOMAIN_UNTRUSTED
from repro.sdk import ecall
from repro.sm import api as api_module
from repro.sm.abi import (
    ABI,
    API_SPECS,
    ECALL_STUBS,
    EnclaveEcall,
    arg_errors,
    fuzzable_specs,
)
from repro.sm.api import SecurityMonitor
from repro.sm.invariants import GUARDED_API
from repro.sm.resources import ResourceType

OS = DOMAIN_UNTRUSTED


# ---------------------------------------------------------------------------
# Coverage: registry <-> public methods
# ---------------------------------------------------------------------------

def _public_api_methods() -> list[str]:
    """Public SecurityMonitor methods whose first parameter is ``caller``.

    That calling convention is what marks a method as part of the
    software-visible SM API (boot helpers and introspection take other
    leading parameters).
    """
    names = []
    for name, member in inspect.getmembers(SecurityMonitor, inspect.isfunction):
        if name.startswith("_"):
            continue
        params = list(inspect.signature(member).parameters)
        if len(params) >= 2 and params[1] == "caller":
            names.append(name)
    return sorted(names)


def test_every_public_api_method_is_registered():
    unregistered = [n for n in _public_api_methods() if n not in ABI]
    assert not unregistered, (
        f"public API methods missing from the ABI registry: {unregistered} — "
        "add an ApiSpec to repro.sm.abi.API_SPECS"
    )


def test_every_registry_entry_has_a_handler():
    for spec in API_SPECS:
        assert callable(getattr(SecurityMonitor, spec.name, None)), (
            f"{spec.name}: registered but no public wrapper exists"
        )
        handler = "_raw_" + spec.name if spec.raw else "_validate_" + spec.name
        assert callable(getattr(SecurityMonitor, handler, None)), (
            f"{spec.name}: registered but {handler} does not exist"
        )


def test_registry_args_match_handler_signatures():
    for spec in API_SPECS:
        wrapper = getattr(SecurityMonitor, spec.name)
        params = list(inspect.signature(wrapper).parameters)[1:]  # drop self
        assert params[0] == "caller"
        assert [a.name for a in spec.args] == params[1:], (
            f"{spec.name}: registry args {[a.name for a in spec.args]} != "
            f"signature {params[1:]}"
        )


def test_invariant_guard_surface_is_registry_derived():
    assert GUARDED_API == tuple(s.name for s in API_SPECS) + ("handle_trap",)


# ---------------------------------------------------------------------------
# Yield-site fidelity
# ---------------------------------------------------------------------------

def test_declared_yield_sites_shape():
    for spec in API_SPECS:
        if spec.raw:
            assert spec.yield_sites == ()
        elif spec.locks:
            assert spec.yield_sites == (
                f"{spec.name}.validated",
                f"{spec.name}.locked",
            ), f"{spec.name}: lock-taking calls get .validated then .locked"
        else:
            assert spec.yield_sites == (f"{spec.name}.validated",)


def test_no_handler_hand_rolls_yield_points():
    source = inspect.getsource(api_module)
    calls = [
        line for line in source.splitlines()
        if "self._yield_point(" in line or "sm._yield_point(" in line
    ]
    assert not calls, (
        "handlers must not call _yield_point themselves — the pipeline "
        f"fires the registry's sites: {calls}"
    )


def test_lock_taking_call_fires_registry_sites(sanctum_system):
    sm = sanctum_system.sm
    rid = sanctum_system.kernel._donatable_regions[0]
    sites: list[str] = []
    sm.set_fault_hook(sites.append)
    assert sm.block_resource(OS, ResourceType.DRAM_REGION, rid) is ApiResult.OK
    sm.set_fault_hook(None)
    assert tuple(sites) == ABI["block_resource"].yield_sites


def test_lock_free_call_fires_only_validated(sanctum_system):
    sm = sanctum_system.sm
    sites: list[str] = []
    sm.set_fault_hook(sites.append)
    result, _ = sm.get_field(OS, 0)
    sm.set_fault_hook(None)
    assert result is ApiResult.OK
    assert tuple(sites) == ABI["get_field"].yield_sites == ("get_field.validated",)


def test_failed_validation_fires_no_sites(sanctum_system):
    sm = sanctum_system.sm
    sites: list[str] = []
    sm.set_fault_hook(sites.append)
    assert sm.init_enclave(OS, 0xDEAD000) is ApiResult.UNKNOWN_RESOURCE
    sm.set_fault_hook(None)
    assert sites == [], "error returns must not reach any yield site"


# ---------------------------------------------------------------------------
# Derivations: SDK stubs and fuzzer op table
# ---------------------------------------------------------------------------

def test_every_ecall_number_has_a_stub():
    covered = {stub.number for stub in ECALL_STUBS}
    assert covered == set(EnclaveEcall), (
        f"ecall numbers without a stub: {set(EnclaveEcall) - covered}"
    )


def test_sdk_stub_functions_are_generated_for_every_ecall():
    for stub in ECALL_STUBS:
        fn = getattr(ecall, stub.name, None)
        assert callable(fn), f"sdk.ecall.{stub.name} missing"
        assert fn.__doc__ == stub.doc


def test_generated_stub_asm_matches_the_documented_abi():
    asm = ecall.accept_mail(1, "gp")
    assert "    li   a1, 1" in asm
    assert "    add  a2, gp, zero" in asm
    assert f"    li   a0, {int(EnclaveEcall.ACCEPT_MAIL)}" in asm
    assert asm.rstrip().endswith("ecall")

    asm = ecall.send_mail(0x10000, "msg_buf", 16)
    assert "    li   a1, 65536" in asm  # immediate recipient -> li
    assert "    li   a2, msg_buf" in asm
    assert "    li   a3, 16" in asm

    asm = ecall.get_sealing_key("dst")
    assert f"    li   a0, {int(EnclaveEcall.GET_SEALING_KEY)}" in asm


def test_stub_api_links_resolve_to_registry_entries():
    for stub in ECALL_STUBS:
        if stub.api is not None:
            assert stub.api in ABI, f"{stub.name} links unknown api {stub.api!r}"
            assert ABI[stub.api].ecall is stub.number


def test_fuzzer_op_table_is_registry_derived():
    names = {spec.name for spec in fuzzable_specs()}
    # Everything fuzzable is a real public method...
    assert names <= set(_public_api_methods())
    # ...and every registered call is currently fuzzable (none opt out).
    assert names == {s.name for s in API_SPECS}


# ---------------------------------------------------------------------------
# Shared argument spec-checking
# ---------------------------------------------------------------------------

def test_arg_errors_explains_constraint_violations():
    errors = arg_errors("create_enclave", (0x1000, 0x40000100, 0, 99))
    text = "; ".join(errors)
    assert "evrange_base" in text and "aligned" in text
    assert "evrange_size" in text
    assert "num_mailboxes" in text and "maximum" in text
    assert arg_errors("create_enclave", (0x1000, 0x40000000, 0x10000, 1)) == []


def test_arg_errors_tolerates_wrong_types():
    errors = arg_errors("send_mail", (0x10000, 12345))  # int message
    assert any("wrong type" in e for e in errors)
