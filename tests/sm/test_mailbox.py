"""Mailboxes and local attestation (Fig. 5, §VI-B)."""

import pytest

from repro.errors import ApiResult
from repro.hw.core import DOMAIN_UNTRUSTED
from repro.sm.api import UNTRUSTED_MEASUREMENT
from repro.sm.mailbox import MAILBOX_SIZE, Mailbox, MailboxState
from tests.conftest import trivial_enclave_image

OS = DOMAIN_UNTRUSTED


# ---------------------------------------------------------------------------
# The state machine in isolation
# ---------------------------------------------------------------------------

def test_fig5_happy_path():
    box = Mailbox(0)
    assert box.accept(sender=7) is ApiResult.OK
    assert box.state is MailboxState.EXPECTING
    assert box.deliver(7, b"M" * 64, b"hello") is ApiResult.OK
    assert box.state is MailboxState.FULL
    result, message, measurement = box.fetch()
    assert result is ApiResult.OK and message == b"hello" and measurement == b"M" * 64
    assert box.state is MailboxState.CLOSED


def test_unaccepted_sender_cannot_deliver():
    box = Mailbox(0)
    assert box.deliver(7, b"M" * 64, b"x") is ApiResult.MAILBOX_STATE
    box.accept(sender=8)
    assert box.deliver(7, b"M" * 64, b"x") is ApiResult.PROHIBITED, (
        "the DoS defence: only the accepted sender may fill the box"
    )


def test_full_box_rejects_more_mail_and_reaccept():
    box = Mailbox(0)
    box.accept(7)
    box.deliver(7, b"M" * 64, b"first")
    assert box.deliver(7, b"M" * 64, b"second") is ApiResult.MAILBOX_STATE
    assert box.accept(7) is ApiResult.MAILBOX_STATE, "cannot drop pending mail"


def test_recipient_may_change_expected_sender_before_delivery():
    box = Mailbox(0)
    box.accept(7)
    assert box.accept(9) is ApiResult.OK
    assert box.deliver(7, b"M" * 64, b"x") is ApiResult.PROHIBITED
    assert box.deliver(9, b"M" * 64, b"x") is ApiResult.OK


def test_fetch_empty_fails():
    box = Mailbox(0)
    result, message, measurement = box.fetch()
    assert result is ApiResult.MAILBOX_STATE and message == b"" and measurement == b""


def test_oversized_message_rejected():
    box = Mailbox(0)
    box.accept(7)
    assert box.deliver(7, b"M" * 64, b"x" * (MAILBOX_SIZE + 1)) is ApiResult.INVALID_VALUE


# ---------------------------------------------------------------------------
# Through the SM API
# ---------------------------------------------------------------------------

def _two_enclaves(system):
    a = system.kernel.load_enclave(trivial_enclave_image())
    b = system.kernel.load_enclave(trivial_enclave_image(value=7))
    return a, b


def test_sm_records_sender_measurement(any_system):
    sm = any_system.sm
    a, b = _two_enclaves(any_system)
    assert sm.accept_mail(b.eid, 0, a.eid) is ApiResult.OK
    assert sm.send_mail(a.eid, b.eid, b"ping") is ApiResult.OK
    result, message, measurement = sm.get_mail(b.eid, 0)
    assert result is ApiResult.OK
    assert message == b"ping"
    assert measurement == sm.enclave_measurement(a.eid), (
        "the SM, not the sender, vouches for the sender's identity"
    )


def test_os_mail_carries_untrusted_measurement(any_system):
    sm = any_system.sm
    a, __ = _two_enclaves(any_system)
    assert sm.accept_mail(a.eid, 0, OS) is ApiResult.OK
    assert sm.send_mail(OS, a.eid, b"from-os") is ApiResult.OK
    __, __, measurement = sm.get_mail(a.eid, 0)
    assert measurement == UNTRUSTED_MEASUREMENT


def test_send_without_accept_fails(any_system):
    sm = any_system.sm
    a, b = _two_enclaves(any_system)
    assert sm.send_mail(a.eid, b.eid, b"x") is ApiResult.MAILBOX_STATE


def test_send_to_unknown_recipient(any_system):
    sm = any_system.sm
    a, __ = _two_enclaves(any_system)
    assert sm.send_mail(a.eid, 0xDEAD00, b"x") is ApiResult.UNKNOWN_RESOURCE


def test_uninitialized_enclave_cannot_send(any_system):
    sm = any_system.sm
    a, __ = _two_enclaves(any_system)
    eid = sm.state.suggest_metadata(4096)
    sm.create_enclave(OS, eid, 0x40000000, 4096, 1)
    assert sm.accept_mail(a.eid, 0, eid) is ApiResult.OK
    assert sm.send_mail(eid, a.eid, b"x") is ApiResult.PROHIBITED, (
        "a LOADING enclave has no measurement to vouch for"
    )


def test_os_has_no_mailboxes(any_system):
    sm = any_system.sm
    assert sm.accept_mail(OS, 0, OS) is ApiResult.PROHIBITED
    result, __, __ = sm.get_mail(OS, 0)
    assert result is ApiResult.PROHIBITED


def test_mailbox_index_validated(any_system):
    sm = any_system.sm
    a, b = _two_enclaves(any_system)
    assert sm.accept_mail(a.eid, 5, b.eid) is ApiResult.INVALID_VALUE
    result, __, __ = sm.get_mail(a.eid, 5)
    assert result is ApiResult.INVALID_VALUE


def test_multiple_mailboxes_independent(any_system):
    sm = any_system.sm
    kernel = any_system.kernel
    receiver = kernel.load_enclave(trivial_enclave_image(value=9))
    # receiver has 1 mailbox by default; build one with 2.
    from repro import image_from_assembly

    two_box = kernel.load_enclave(
        image_from_assembly("entry:\n    li a0, 0\n    ecall\n", num_mailboxes=2)
    )
    a, b = _two_enclaves(any_system)
    assert sm.accept_mail(two_box.eid, 0, a.eid) is ApiResult.OK
    assert sm.accept_mail(two_box.eid, 1, b.eid) is ApiResult.OK
    assert sm.send_mail(b.eid, two_box.eid, b"from-b") is ApiResult.OK
    assert sm.send_mail(a.eid, two_box.eid, b"from-a") is ApiResult.OK
    __, message0, meas0 = sm.get_mail(two_box.eid, 0)
    __, message1, meas1 = sm.get_mail(two_box.eid, 1)
    assert message0 == b"from-a" and meas0 == sm.enclave_measurement(a.eid)
    assert message1 == b"from-b" and meas1 == sm.enclave_measurement(b.eid)
