"""Sealing keys: stable per (device, SM, enclave binary), else distinct."""

from repro import build_sanctum_system, image_from_assembly
from repro.errors import ApiResult
from repro.hw.core import DOMAIN_UNTRUSTED
from repro.sm.api import EnclaveEcall
from tests.conftest import small_config, trivial_enclave_image

OS = DOMAIN_UNTRUSTED


def _key_for(system, image):
    loaded = system.kernel.load_enclave(image)
    result, key = system.sm.get_sealing_key(loaded.eid)
    assert result is ApiResult.OK and len(key) == 32
    system.kernel.destroy_enclave(loaded.eid)
    return key


def test_key_stable_across_reloads(any_system):
    image = trivial_enclave_image()
    assert _key_for(any_system, image) == _key_for(any_system, image)


def test_key_differs_per_binary(any_system):
    a = _key_for(any_system, trivial_enclave_image(value=1))
    b = _key_for(any_system, trivial_enclave_image(value=2))
    assert a != b


def test_key_differs_per_sm_build():
    image = trivial_enclave_image()
    a = build_sanctum_system(config=small_config(), sm_image=b"SM-v1")
    b = build_sanctum_system(config=small_config(), sm_image=b"SM-v2")
    assert _key_for(a, image) != _key_for(b, image)


def test_key_differs_per_device():
    from repro.hw.machine import MachineConfig

    image = trivial_enclave_image()
    a = build_sanctum_system(config=MachineConfig(dram_size=32 * 1024 * 1024, llc_sets=256, trng_seed=1))
    b = build_sanctum_system(config=MachineConfig(dram_size=32 * 1024 * 1024, llc_sets=256, trng_seed=2))
    assert _key_for(a, image) != _key_for(b, image)


def test_key_stable_across_reboot_of_same_device():
    """Reboot = rebuild the system with the same seed: sealed data survives."""
    image = trivial_enclave_image()
    first_boot = build_sanctum_system(config=small_config())
    second_boot = build_sanctum_system(config=small_config())
    assert _key_for(first_boot, image) == _key_for(second_boot, image)


def test_unsealed_callers_refused(any_system):
    sm = any_system.sm
    result, key = sm.get_sealing_key(OS)
    assert result is ApiResult.PROHIBITED and key == b""
    eid = sm.state.suggest_metadata(4096)
    sm.create_enclave(OS, eid, 0x40000000, 4096, 1)
    result, key = sm.get_sealing_key(eid)  # still LOADING
    assert result is ApiResult.PROHIBITED


def test_in_vm_sealing_key_matches_host_view(any_system):
    """The GET_SEALING_KEY ecall delivers the same bytes the host API derives.

    (The enclave deliberately exports its key to shared memory here —
    its choice; the test only checks consistency.)
    """
    kernel = any_system.kernel
    out = kernel.alloc_buffer(1)
    source = f"""
entry:
    li   a0, {int(EnclaveEcall.GET_SEALING_KEY)}
    li   a1, key_buf
    ecall
    bne  a0, zero, done
    li   t0, 0
export:
    li   t1, key_buf
    add  t1, t1, t0
    lbu  t2, 0(t1)
    li   t1, {out}
    add  t1, t1, t0
    sb   t2, 0(t1)
    addi t0, t0, 1
    li   t1, 32
    bltu t0, t1, export
done:
    li   a0, 0
    ecall
    .align 8
key_buf:
    .zero 32
"""
    loaded = kernel.load_enclave(image_from_assembly(source))
    kernel.enter_and_run(loaded.eid, loaded.tids[0])
    exported = kernel.read_shared(out, 32)
    __, expected = any_system.sm.get_sealing_key(loaded.eid)
    assert exported == expected
