"""Event interposition, AEX, fault handlers (Fig. 1, §V-C)."""

from repro import image_from_assembly
from repro.errors import ApiResult
from repro.hw.core import DOMAIN_UNTRUSTED
from repro.hw.isa import NUM_REGS, Reg
from repro.hw.traps import TrapCause
from repro.sdk.runtime import exit_sequence, with_runtime
from repro.sm.events import OsEventKind
from repro.sm.thread import ThreadState

OS = DOMAIN_UNTRUSTED


def _spin_image():
    return image_from_assembly("entry:\nloop:\n    addi t0, t0, 1\n    jal zero, loop\n")


def test_interrupt_forces_aex_with_clean_core(any_system):
    kernel = any_system.kernel
    sm = any_system.sm
    loaded = kernel.load_enclave(_spin_image())
    core = kernel.machine.cores[0]
    assert sm.enter_enclave(OS, loaded.eid, loaded.tids[0], 0) is ApiResult.OK
    kernel.machine.interrupts.arm_timer(0, core.cycles + 200)
    kernel.machine.run_core(0, 10_000)
    events = sm.os_events.drain(0)
    assert events and events[0].kind is OsEventKind.AEX
    assert events[0].cause is TrapCause.TIMER_INTERRUPT
    # §V-C: core state is cleaned before the OS sees the core.
    assert core.regs == [0] * NUM_REGS
    assert core.domain == OS and core.halted
    assert len(core.tlb) == 0
    # The thread remembers it was interrupted.
    thread = sm.state.thread(loaded.tids[0])
    assert thread.aex_present and thread.state is ThreadState.ASSIGNED
    assert thread.aex_state.regs[int(Reg.T0)] > 0, "progress was saved, not lost"


def test_resume_from_aex_continues_computation(any_system):
    kernel = any_system.kernel
    out = kernel.alloc_buffer(1)
    source = with_runtime(
        f"""
main:
    li   t0, 0
    li   t1, 30000
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    sw   t1, {out}(zero)
{exit_sequence()}"""
    )
    loaded = kernel.load_enclave(image_from_assembly(source, entry_symbol="_start"))
    core = kernel.machine.cores[0]
    interrupts = 0
    finished = False
    for _ in range(100):
        kernel.machine.interrupts.arm_timer(0, core.cycles + 3000)
        events = kernel.enter_and_run(loaded.eid, loaded.tids[0])
        if any(e.kind is OsEventKind.ENCLAVE_EXIT for e in events):
            finished = True
            break
        interrupts += 1
    assert finished and interrupts >= 2
    assert kernel.machine.memory.read_u32(out) == 30000
    kernel.machine.interrupts.clear(0)


def test_aex_hides_private_fault_address(any_system):
    """Controlled-channel defence: evrange fault addresses stay hidden."""
    kernel = any_system.kernel
    # Touch an unmapped enclave-virtual address (no fault handler).
    loaded = kernel.load_enclave(
        image_from_assembly("entry:\n    lw a5, 0x400F0000(zero)\n    halt\n",
                            evrange_base=0x40000000, evrange_size=0x10000000)
    )
    events = kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert events[0].kind is OsEventKind.AEX
    assert events[0].cause is TrapCause.PAGE_FAULT_LOAD
    assert events[0].tval == 0, "fault address inside evrange must be withheld"


def test_aex_reveals_shared_fault_address(any_system):
    """Faults on OS-managed memory carry the address (OS must page it)."""
    kernel = any_system.kernel
    probe = kernel.alloc_buffer(1)
    kernel.page_tables.unmap_page(probe)
    for core in kernel.machine.cores:
        core.tlb.flush_all()
    loaded = kernel.load_enclave(
        image_from_assembly(f"entry:\n    lw a5, {probe}(zero)\n    halt\n")
    )
    events = kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert events[0].kind is OsEventKind.AEX
    assert events[0].tval == probe


def test_enclave_fault_handler_receives_private_faults(any_system):
    kernel = any_system.kernel
    out = kernel.alloc_buffer(1)
    source = f"""
entry:
    lw   a5, 0x40F00000(zero)       # unmapped, inside evrange
    halt
handler:
    sw   a1, {out}(zero)            # export the fault address we saw
    li   a0, 0                      # then exit cleanly
    ecall
"""
    loaded = kernel.load_enclave(
        image_from_assembly(
            source,
            evrange_base=0x40000000,
            evrange_size=0x10000000,
            fault_symbol="handler",
        )
    )
    events = kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert events[0].kind is OsEventKind.ENCLAVE_EXIT, (
        "the fault went to the enclave's handler, never to the OS"
    )
    assert kernel.machine.memory.read_u32(out) == 0x40F00000


def test_fault_return_restores_state_and_reexecutes(any_system):
    """FAULT_RETURN restores the interrupted registers and re-runs the access.

    The handler records the register file it observes (which must be the
    faulting context's, untouched), then FAULT_RETURNs.  The re-executed
    load faults again; a private flag makes the handler exit the second
    time — proving both re-execution and state restoration.
    """
    kernel = any_system.kernel
    out = kernel.alloc_buffer(1)
    source = f"""
entry:
    li   t2, 1234
    lw   a5, 0x40F00000(zero)
    halt
handler:
    li   t0, flag
    lw   t1, 0(t0)
    bne  t1, zero, give_up
    li   t1, 1
    sw   t1, 0(t0)
    sw   t2, {out}(zero)            # t2 must still be the faulter's 1234
    li   a0, 10                     # FAULT_RETURN: restore + re-execute
    ecall
    halt
give_up:
    li   a0, 0                      # second fault: exit cleanly
    ecall
    .align 8
flag:
    .word 0
"""
    loaded = kernel.load_enclave(
        image_from_assembly(
            source,
            evrange_base=0x40000000,
            evrange_size=0x10000000,
            fault_symbol="handler",
        )
    )
    events = kernel.enter_and_run(loaded.eid, loaded.tids[0], max_steps=2000)
    assert events and events[0].kind is OsEventKind.ENCLAVE_EXIT
    assert kernel.machine.memory.read_u32(out) == 1234


def test_untrusted_ecall_is_delegated_as_syscall(any_system):
    kernel = any_system.kernel
    core, events = kernel.run_user_program("li a0, 77\necall\nhalt\n")
    assert events and events[0].kind is OsEventKind.SYSCALL
    assert core.read_reg(Reg.A0) == 77, "registers are preserved for the OS"


def test_untrusted_fault_is_delegated_with_address(any_system):
    kernel = any_system.kernel
    target = any_system.sm.state.metadata_arenas[0].base
    __, events = kernel.run_user_program(f"lw a0, {target}(zero)\nhalt\n")
    assert events[0].kind is OsEventKind.FAULT
    assert events[0].cause is TrapCause.ACCESS_FAULT_LOAD
    assert events[0].tval == target


def test_exit_enclave_event_identifies_thread(any_system):
    kernel = any_system.kernel
    loaded = kernel.load_enclave(image_from_assembly("entry:\n    li a0, 0\n    ecall\n"))
    events = kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert events[0].kind is OsEventKind.ENCLAVE_EXIT
    assert events[0].eid == loaded.eid and events[0].tid == loaded.tids[0]
