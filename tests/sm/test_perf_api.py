"""SM API latency histograms and delegated-event counters."""

from repro.sm.events import OsEventKind

from tests.conftest import trivial_enclave_image


def test_sm_api_calls_land_in_latency_histograms(sanctum_system):
    kernel = sanctum_system.kernel
    loaded = kernel.load_enclave(trivial_enclave_image())
    kernel.enter_and_run(loaded.eid, loaded.tids[0])
    latencies = sanctum_system.machine.perf.api_latencies
    # The loader drives these entry points; each must have been timed.
    for name in ("create_enclave", "load_page", "init_enclave", "enter_enclave"):
        assert name in latencies, f"{name} not timed"
        assert latencies[name].count >= 1
        assert latencies[name].total_ns > 0
    assert latencies["load_page"].summary()["count"] == latencies["load_page"].count
    # The run itself traps (enclave ecall): handle_trap is timed too.
    assert latencies["handle_trap"].count >= 1
    # And the report renders them.
    assert "SM API latencies" in sanctum_system.machine.perf.format_report()


def test_os_event_queue_counts_posted_events(sanctum_system):
    kernel = sanctum_system.kernel
    queue = sanctum_system.sm.os_events
    assert queue.posted == 0
    loaded = kernel.load_enclave(trivial_enclave_image())
    events = kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert events, "expected at least the voluntary exit event"
    assert queue.posted == len(events)
    assert queue.posted_by_kind[OsEventKind.ENCLAVE_EXIT] == 1
    assert queue.counters()["enclave_exit"] == 1
    # Draining does not reset the lifetime counters.
    assert queue.pending(0) == 0 and queue.posted == len(events)
