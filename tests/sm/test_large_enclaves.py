"""Large enclaves: multiple level-0 tables, multi-region spans."""

import pytest

from repro.hw.memory import PAGE_SIZE
from repro.hw.paging import PTE_R, PTE_W, PTE_X
from repro.kernel.loader import EnclaveImage, EnclaveSegment, L0_SPAN
from repro.sm.events import OsEventKind
from repro.sm.invariants import check_all
from repro.sdk.measure import predict_measurement

RWX = PTE_R | PTE_W | PTE_X


def _spanning_image():
    """Code in one 4 MB block, data in the next — two L0 tables."""
    base = 0x40000000
    data_vaddr = base + L0_SPAN  # next level-0 block
    code = f"""
entry:
    li   t0, {data_vaddr}
    lw   t1, 0(t0)                  # read the far data page
    li   t2, 0x40404040
    bne  t1, t2, bad
    li   a0, 0
    ecall
bad:
    halt
"""
    from repro.hw.asm import assemble

    assembled = assemble(code, base=base)
    return EnclaveImage(
        evrange_base=base,
        evrange_size=2 * L0_SPAN,
        segments=(
            EnclaveSegment(base, assembled.data, RWX),
            EnclaveSegment(data_vaddr, b"\x40" * 16, PTE_R | PTE_W),
        ),
        entry_pc=base,
        entry_sp=0,
    )


def test_enclave_spanning_two_l0_blocks(any_system):
    image = _spanning_image()
    assert len(image.l0_blocks()) == 2
    loaded = any_system.kernel.load_enclave(image)
    events = any_system.kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert events[0].kind is OsEventKind.ENCLAVE_EXIT, (
        "the far load must hit the second-level table, not fault"
    )
    check_all(any_system.sm)


def test_spanning_measurement_predicted(any_system):
    image = _spanning_image()
    predicted = predict_measurement(
        image, any_system.boot.sm_measurement, any_system.platform.name
    )
    loaded = any_system.kernel.load_enclave(image)
    assert any_system.sm.enclave_measurement(loaded.eid) == predicted


def test_multi_region_enclave_on_sanctum(sanctum_system):
    """An enclave bigger than one 4 MB region gets several regions."""
    big_data = EnclaveSegment(0x40001000, bytes(5 * 1024 * 1024), PTE_R | PTE_W)
    code = EnclaveSegment(
        0x40000000,
        # li a0,0; ecall
        bytes([2, 8, 0, 0, 0, 0, 0, 0, 29, 0, 0, 0, 0, 0, 0, 0]),
        RWX,
    )
    image = EnclaveImage(
        evrange_base=0x40000000,
        evrange_size=8 * 1024 * 1024,
        segments=(code, big_data),
        entry_pc=0x40000000,
        entry_sp=0,
    )
    loaded = sanctum_system.kernel.load_enclave(image)
    assert len(loaded.rids) >= 2, "needs more than one 4 MiB region"
    events = sanctum_system.kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert events[0].kind is OsEventKind.ENCLAVE_EXIT
    check_all(sanctum_system.sm)
    # Full teardown of a multi-region enclave.
    sanctum_system.kernel.destroy_enclave(loaded.eid)
    check_all(sanctum_system.sm)
