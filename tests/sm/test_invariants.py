"""The invariant checker: holds on healthy systems, trips on corruption."""

import pytest

from repro.errors import InvariantViolation
from repro.hw.core import DOMAIN_SM, DOMAIN_UNTRUSTED
from repro.sm.invariants import (
    check_all,
    check_dma_exclusion,
    check_enclave_page_injectivity,
    check_lock_quiescence,
    check_measurement_discipline,
    check_metadata_in_sm_memory,
    check_region_ownership,
    check_scheduling_consistency,
)
from tests.conftest import trivial_enclave_image


def test_fresh_system_satisfies_all(any_system):
    check_all(any_system.sm)


def test_loaded_system_satisfies_all(any_system):
    any_system.kernel.load_enclave(trivial_enclave_image())
    check_all(any_system.sm)


def test_detects_hardware_map_divergence(any_system):
    loaded = any_system.kernel.load_enclave(trivial_enclave_image())
    # Corrupt: hardware says the OS owns the enclave's region.
    any_system.platform.assign_region(loaded.rids[0], DOMAIN_UNTRUSTED)
    with pytest.raises(InvariantViolation, match="region_ownership"):
        check_region_ownership(any_system.sm)


def test_detects_page_aliasing(any_system):
    loaded = any_system.kernel.load_enclave(trivial_enclave_image())
    enclave = any_system.sm.state.enclave(loaded.eid)
    vpns = sorted(enclave.vpn_to_ppn)
    enclave.vpn_to_ppn[vpns[0]] = enclave.vpn_to_ppn[vpns[1]]
    with pytest.raises(InvariantViolation, match="page_injectivity"):
        check_enclave_page_injectivity(any_system.sm)


def test_detects_unowned_enclave_page(any_system):
    loaded = any_system.kernel.load_enclave(trivial_enclave_image())
    enclave = any_system.sm.state.enclave(loaded.eid)
    os_frame = any_system.kernel.alloc_frame()
    enclave.vpn_to_ppn[0x99999] = os_frame
    with pytest.raises(InvariantViolation, match="page_injectivity"):
        check_enclave_page_injectivity(any_system.sm)


def test_detects_missing_measurement(any_system):
    loaded = any_system.kernel.load_enclave(trivial_enclave_image())
    any_system.sm.state.enclave(loaded.eid).measurement = b""
    with pytest.raises(InvariantViolation, match="measurement_discipline"):
        check_measurement_discipline(any_system.sm)


def test_detects_scheduling_skew(any_system):
    loaded = any_system.kernel.load_enclave(trivial_enclave_image())
    any_system.sm.state.enclave(loaded.eid).scheduled_threads = 3
    with pytest.raises(InvariantViolation, match="scheduling"):
        check_scheduling_consistency(any_system.sm)


def test_detects_dma_hole(any_system):
    from repro.hw.dma import DmaRange

    any_system.kernel.load_enclave(trivial_enclave_image())
    any_system.machine.dma_filter.set_ranges(
        [DmaRange(0, any_system.machine.config.dram_size)]
    )
    with pytest.raises(InvariantViolation, match="dma_exclusion"):
        check_dma_exclusion(any_system.sm)


def test_detects_metadata_overlap(any_system):
    arena = any_system.sm.state.metadata_arenas[0]
    arena.claims[arena.base] = 256
    arena.claims[arena.base + 128] = 256
    with pytest.raises(InvariantViolation, match="metadata_in_sm_memory"):
        check_metadata_in_sm_memory(any_system.sm)


def test_detects_stuck_lock(any_system):
    loaded = any_system.kernel.load_enclave(trivial_enclave_image())
    any_system.sm.state.enclave(loaded.eid).lock.acquire("stuck")
    with pytest.raises(InvariantViolation, match="lock_quiescence"):
        check_lock_quiescence(any_system.sm)
