"""Fig.-2 resource state machine and the transactional lock discipline."""

import pytest

from repro.errors import ApiResult
from repro.sm.locks import LockConflict, SmLock, Transaction
from repro.sm.resources import ResourceMap, ResourceState, ResourceType


def _map_with_region(owner=0, state=ResourceState.OWNED):
    resources = ResourceMap()
    resources.register(ResourceType.DRAM_REGION, 0, owner, state)
    return resources


# ---------------------------------------------------------------------------
# Fig. 2 transitions
# ---------------------------------------------------------------------------

def test_full_lifecycle_owned_blocked_free_owned():
    resources = _map_with_region(owner=7)
    assert resources.block(ResourceType.DRAM_REGION, 0, caller=7) is ApiResult.OK
    assert resources.get(ResourceType.DRAM_REGION, 0).state is ResourceState.BLOCKED
    assert resources.clean(ResourceType.DRAM_REGION, 0) is ApiResult.OK
    record = resources.get(ResourceType.DRAM_REGION, 0)
    assert record.state is ResourceState.FREE and record.owner == -1
    assert resources.offer(ResourceType.DRAM_REGION, 0, new_owner=9) is ApiResult.OK
    assert resources.accept(ResourceType.DRAM_REGION, 0, caller=9) is ApiResult.OK
    record = resources.get(ResourceType.DRAM_REGION, 0)
    assert record.owner == 9 and record.state is ResourceState.OWNED


def test_only_owner_may_block():
    resources = _map_with_region(owner=7)
    assert resources.block(ResourceType.DRAM_REGION, 0, caller=8) is ApiResult.PROHIBITED


def test_clean_requires_blocked():
    resources = _map_with_region(owner=7)
    assert resources.clean(ResourceType.DRAM_REGION, 0) is ApiResult.INVALID_STATE


def test_offer_requires_free():
    resources = _map_with_region(owner=7)
    assert resources.offer(ResourceType.DRAM_REGION, 0, 9) is ApiResult.INVALID_STATE


def test_accept_requires_matching_recipient():
    resources = _map_with_region(owner=7, state=ResourceState.FREE)
    resources.get(ResourceType.DRAM_REGION, 0).owner = -1
    resources.offer(ResourceType.DRAM_REGION, 0, new_owner=9)
    assert resources.accept(ResourceType.DRAM_REGION, 0, caller=8) is ApiResult.PROHIBITED
    assert resources.accept(ResourceType.DRAM_REGION, 0, caller=9) is ApiResult.OK


def test_unknown_resource_everywhere():
    resources = ResourceMap()
    for fn in (
        lambda: resources.block(ResourceType.CORE, 5, 0),
        lambda: resources.clean(ResourceType.CORE, 5),
        lambda: resources.offer(ResourceType.CORE, 5, 1),
        lambda: resources.accept(ResourceType.CORE, 5, 1),
    ):
        assert fn() is ApiResult.UNKNOWN_RESOURCE


def test_block_requires_owned_state():
    resources = _map_with_region(owner=7)
    resources.block(ResourceType.DRAM_REGION, 0, 7)
    assert resources.block(ResourceType.DRAM_REGION, 0, 7) is ApiResult.INVALID_STATE


def test_double_registration_rejected():
    resources = _map_with_region()
    with pytest.raises(ValueError):
        resources.register(ResourceType.DRAM_REGION, 0, 0, ResourceState.OWNED)


def test_owned_by_filters():
    resources = ResourceMap()
    resources.register(ResourceType.DRAM_REGION, 0, 7, ResourceState.OWNED)
    resources.register(ResourceType.DRAM_REGION, 1, 7, ResourceState.BLOCKED)
    resources.register(ResourceType.CORE, 0, 7, ResourceState.OWNED)
    owned = resources.owned_by(7)
    assert len(owned) == 2  # blocked records are not "owned"
    assert len(resources.owned_by(7, ResourceType.CORE)) == 1


# ---------------------------------------------------------------------------
# Locks / transactions
# ---------------------------------------------------------------------------

def test_transaction_acquires_and_releases():
    a, b = SmLock("a"), SmLock("b")
    with Transaction() as txn:
        txn.take(a, b)
        assert a.held and b.held
    assert not a.held and not b.held


def test_transaction_conflict_rolls_back():
    a, b = SmLock("a"), SmLock("b")
    b.acquire("other")
    with pytest.raises(LockConflict):
        with Transaction() as txn:
            txn.take(a, b)
    assert not a.held, "locks taken before the conflict must be released"
    assert b.held_by == "other"
    b.release()


def test_transaction_releases_on_exception():
    a = SmLock("a")
    with pytest.raises(RuntimeError):
        with Transaction() as txn:
            txn.take(a)
            raise RuntimeError("body failed")
    assert not a.held


def test_taking_same_lock_twice_is_idempotent():
    a = SmLock("a")
    with Transaction() as txn:
        txn.take(a)
        txn.take(a)
        assert a.held
    assert not a.held


def test_canonical_order_prevents_deadlock_shape():
    # Whatever order locks are requested in, acquisition follows ordinals.
    a, b = SmLock("a"), SmLock("b")
    acquired = []
    original_acquire = SmLock.acquire

    def spying_acquire(self, holder="sm"):
        acquired.append(self.name)
        return original_acquire(self, holder)

    SmLock.acquire = spying_acquire
    try:
        with Transaction() as txn:
            txn.take(b, a)
    finally:
        SmLock.acquire = original_acquire
    assert acquired == ["a", "b"]


def test_release_unheld_lock_is_a_bug():
    a = SmLock("a")
    with pytest.raises(RuntimeError):
        a.release()
