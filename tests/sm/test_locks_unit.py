"""Unit tests for the transactional lock machinery (§V-A).

Edge cases of :mod:`repro.sm.locks` that the integration suite only
exercises implicitly: partial-batch rollback, idempotent re-take,
release discipline, and the canonical-ordinal acquisition order that
makes nested transactions deadlock-free by construction.
"""

from __future__ import annotations

import pytest

from repro.sm.locks import LockConflict, SmLock, Transaction, set_acquire_hook


def test_second_batch_conflict_releases_first_batch_on_exit():
    a, b, c = SmLock("a"), SmLock("b"), SmLock("c")
    c.acquire("concurrent-caller")
    with pytest.raises(LockConflict):
        with Transaction() as txn:
            txn.take(a)
            txn.take(b, c)  # b acquires, c conflicts
            raise AssertionError("unreachable: take must raise")
    assert not a.held, "first-batch lock leaked across a failed transaction"
    assert not b.held, "partial second batch leaked"
    assert c.held_by == "concurrent-caller", "the conflicting holder keeps its lock"


def test_double_take_is_idempotent():
    a, b = SmLock("a"), SmLock("b")
    with Transaction() as txn:
        txn.take(a)
        txn.take(a, b)  # a again in a later batch: skipped, not re-acquired
        txn.take(a)
        assert a.held and b.held
    # One release each on exit; a double-release would raise RuntimeError.
    assert not a.held and not b.held


def test_release_on_unheld_lock_raises():
    lock = SmLock("never-held")
    with pytest.raises(RuntimeError, match="never-held"):
        lock.release()


def test_acquisitions_follow_global_ordinal_order():
    a, b, c = SmLock("a"), SmLock("b"), SmLock("c")  # ordinals ascend
    observed: list[str] = []

    def hook(lock: SmLock, holder: str) -> bool:
        observed.append(lock.name)
        return False

    set_acquire_hook(hook)
    try:
        with Transaction() as txn:
            txn.take(c, a, b)  # scrambled argument order
    finally:
        set_acquire_hook(None)
    assert observed == ["a", "b", "c"]


def test_ordinal_order_keeps_nested_transactions_deadlock_free():
    """A nested transaction never holds-and-waits.

    t1 holds ``a``.  t2 wants ``{b, a}``; canonical ordering makes it
    try ``a`` *first*, so it conflicts immediately — before acquiring
    ``b`` — and rolls back holding nothing.  Hold-and-wait (the
    deadlock ingredient) is structurally impossible.
    """
    a, b = SmLock("a"), SmLock("b")
    with Transaction("t1") as t1:
        t1.take(a)
        with pytest.raises(LockConflict):
            with Transaction("t2") as t2:
                t2.take(b, a)
        assert not b.held, "t2 held b while blocked on a (hold-and-wait)"
        assert a.held_by == "t1"
    assert not a.held


def test_acquire_hook_forces_conflict_and_clears():
    lock = SmLock("target")
    set_acquire_hook(lambda l, holder: True)
    try:
        assert not lock.acquire()
        assert not lock.held
    finally:
        set_acquire_hook(None)
    assert lock.acquire()
    assert lock.held
    lock.release()
