"""The threat-model test-suite: every §IV attack must fail."""

import pytest

from repro.errors import ApiResult
from repro.hw.dma import DmaDevice
from repro.hw.traps import TrapCause
from repro.kernel.adversary import MaliciousOs
from repro.sm.invariants import check_all
from tests.conftest import trivial_enclave_image


@pytest.fixture
def victim_setup(any_system):
    loaded = any_system.kernel.load_enclave(trivial_enclave_image())
    return any_system, MaliciousOs(any_system.kernel), loaded


def test_os_cannot_read_enclave_memory(victim_setup):
    system, adversary, loaded = victim_setup
    result = adversary.probe_enclave_memory(loaded)
    assert not result.succeeded
    assert result.fault is TrapCause.ACCESS_FAULT_LOAD


def test_os_cannot_read_enclave_memory_via_fresh_mapping(victim_setup):
    system, adversary, loaded = victim_setup
    result = adversary.map_enclave_page_into_os_tables(loaded)
    assert not result.succeeded, (
        "remapping is the OS's right; the access must still fault in hardware"
    )


def test_os_cannot_read_sm_metadata(victim_setup):
    system, adversary, __ = victim_setup
    assert not adversary.probe_sm_metadata().succeeded


def test_dma_cannot_reach_enclave_or_sm(victim_setup):
    system, adversary, loaded = victim_setup
    device = DmaDevice("nic", system.machine.memory, system.machine.dma_filter)
    assert adversary.dma_attack(device, loaded.region_base)
    assert adversary.dma_attack(device, system.sm.state.metadata_arenas[0].base)
    # Sanity: DMA into plain OS memory still works.
    buffer = system.kernel.alloc_buffer(1)
    device.write_to_memory(buffer, b"legit")
    assert system.machine.memory.read(buffer, 5) == b"legit"


def test_os_cannot_tamper_after_init(victim_setup):
    __, adversary, loaded = victim_setup
    assert adversary.tamper_after_init(loaded) is ApiResult.INVALID_STATE


def test_os_cannot_steal_enclave_region(victim_setup):
    __, adversary, loaded = victim_setup
    assert adversary.steal_enclave_region(loaded) is ApiResult.PROHIBITED


def test_blocked_region_needs_cleaning_before_reuse(victim_setup):
    system, adversary, loaded = victim_setup
    assert adversary.reclaim_without_cleaning(loaded) is ApiResult.INVALID_STATE
    # And the enclave's secrets are still unreachable while blocked.
    probe = adversary.probe_physical(loaded.region_base)
    assert not probe.succeeded


def test_forged_and_dangling_eids_rejected(victim_setup):
    system, adversary, loaded = victim_setup
    assert adversary.forge_eid(0x123456) is ApiResult.UNKNOWN_RESOURCE
    system.kernel.destroy_enclave(loaded.eid)
    assert adversary.forge_eid(loaded.eid) is ApiResult.UNKNOWN_RESOURCE


def test_metadata_cannot_live_in_os_memory(victim_setup):
    __, adversary, __ = victim_setup
    assert adversary.create_enclave_outside_sm_memory() is ApiResult.INVALID_VALUE


def test_metadata_cannot_overlap(victim_setup):
    __, adversary, loaded = victim_setup
    assert adversary.overlap_metadata(loaded) is ApiResult.INVALID_VALUE


def test_thread_cannot_run_twice(victim_setup):
    __, adversary, loaded = victim_setup
    assert adversary.double_entry(loaded) is ApiResult.INVALID_STATE


def test_impostor_signing_enclave_gets_no_key(any_system):
    from repro.sdk.measure import predict_measurement
    from repro.sdk.signing_enclave import build_signing_enclave_image

    kernel = any_system.kernel
    page = kernel.alloc_buffer(1)
    genuine = build_signing_enclave_image(page)
    any_system.sm.register_signing_enclave(
        predict_measurement(genuine, any_system.boot.sm_measurement, any_system.platform.name)
    )
    adversary = MaliciousOs(kernel)
    assert adversary.impersonate_signing_enclave(page) is ApiResult.PROHIBITED


def test_signing_registration_is_once_only(any_system):
    any_system.sm.register_signing_enclave(b"\x11" * 64)
    with pytest.raises(RuntimeError):
        any_system.sm.register_signing_enclave(b"\x22" * 64)


def test_signing_registration_blocked_after_enclaves_exist(any_system):
    any_system.kernel.load_enclave(trivial_enclave_image())
    with pytest.raises(RuntimeError):
        any_system.sm.register_signing_enclave(b"\x33" * 64)


def test_get_attestation_key_requires_exact_measurement(victim_setup):
    system, __, loaded = victim_setup
    result, key = system.sm.get_attestation_key(loaded.eid)
    assert result is ApiResult.PROHIBITED and key == b""


def test_dma_fenced_out_of_blocked_regions(any_system):
    """Regression (found by stateful fuzzing): a region becomes
    DMA-unreachable the moment it is *blocked*, not only when cleaned —
    otherwise a device could scribble into memory in transit between
    protection domains."""
    from repro.hw.core import DOMAIN_UNTRUSTED
    from repro.sm.resources import ResourceType

    sm = any_system.sm
    kernel = any_system.kernel
    loaded = kernel.load_enclave(trivial_enclave_image())
    rid = loaded.rids[0]
    base, __ = any_system.platform.region_range(rid)
    assert sm.delete_enclave(DOMAIN_UNTRUSTED, loaded.eid) is ApiResult.OK
    device = DmaDevice("nic", any_system.machine.memory, any_system.machine.dma_filter)
    assert MaliciousOs(kernel).dma_attack(device, base), (
        "DMA into a blocked (not yet cleaned) region must be denied"
    )


def test_invariants_hold_after_adversarial_session(victim_setup):
    system, adversary, loaded = victim_setup
    adversary.probe_enclave_memory(loaded)
    adversary.tamper_after_init(loaded)
    adversary.steal_enclave_region(loaded)
    adversary.overlap_metadata(loaded)
    adversary.double_entry(loaded)
    check_all(system.sm)
