"""Enclave lifecycle (Fig. 3) and the §VI-A loading discipline."""

import pytest

from repro.errors import ApiResult
from repro.hw.core import DOMAIN_UNTRUSTED
from repro.hw.memory import PAGE_SHIFT, PAGE_SIZE
from repro.hw.paging import PTE_R, PTE_W, PTE_X
from repro.sm.enclave import EnclaveState
from repro.sm.resources import ResourceState, ResourceType
from tests.conftest import trivial_enclave_image

OS = DOMAIN_UNTRUSTED
RWX = PTE_R | PTE_W | PTE_X


def _fresh_enclave(system, evrange=(0x40000000, 0x100000), mailboxes=1):
    """create_enclave + one donated region; returns (eid, region_base)."""
    sm = system.sm
    eid = sm.state.suggest_metadata(4096)
    assert sm.create_enclave(OS, eid, evrange[0], evrange[1], mailboxes) is ApiResult.OK
    base, _, _ = system.kernel.donate_memory(eid, 16 * PAGE_SIZE)
    return eid, base


# ---------------------------------------------------------------------------
# create_enclave validation
# ---------------------------------------------------------------------------

def test_create_rejects_metadata_outside_sm_memory(any_system):
    sm = any_system.sm
    os_frame = any_system.kernel.alloc_frame() << PAGE_SHIFT
    assert sm.create_enclave(OS, os_frame, 0x40000000, PAGE_SIZE, 1) is ApiResult.INVALID_VALUE


def test_create_rejects_unaligned_or_empty_evrange(any_system):
    sm = any_system.sm
    eid = sm.state.suggest_metadata(4096)
    assert sm.create_enclave(OS, eid, 0x40000100, PAGE_SIZE, 1) is ApiResult.INVALID_VALUE
    assert sm.create_enclave(OS, eid, 0x40000000, 0, 1) is ApiResult.INVALID_VALUE
    assert sm.create_enclave(OS, eid, 0x40000000, 100, 1) is ApiResult.INVALID_VALUE
    assert sm.create_enclave(OS, eid, 0xFFFFF000, 2 * PAGE_SIZE, 1) is ApiResult.INVALID_VALUE


def test_create_rejects_bad_mailbox_count(any_system):
    sm = any_system.sm
    eid = sm.state.suggest_metadata(16384)
    assert sm.create_enclave(OS, eid, 0x40000000, PAGE_SIZE, 0) is ApiResult.INVALID_VALUE
    assert sm.create_enclave(OS, eid, 0x40000000, PAGE_SIZE, 17) is ApiResult.INVALID_VALUE


def test_create_rejects_duplicate_eid(any_system):
    sm = any_system.sm
    eid = sm.state.suggest_metadata(4096)
    assert sm.create_enclave(OS, eid, 0x40000000, PAGE_SIZE, 1) is ApiResult.OK
    assert sm.create_enclave(OS, eid, 0x50000000, PAGE_SIZE, 1) is ApiResult.INVALID_VALUE


def test_create_rejects_overlapping_metadata(any_system):
    sm = any_system.sm
    eid = sm.state.suggest_metadata(4096)
    assert sm.create_enclave(OS, eid, 0x40000000, PAGE_SIZE, 1) is ApiResult.OK
    assert (
        sm.create_enclave(OS, eid + 64, 0x50000000, PAGE_SIZE, 1)
        is ApiResult.INVALID_VALUE
    )


def test_only_os_may_create(any_system):
    sm = any_system.sm
    eid = sm.state.suggest_metadata(4096)
    assert sm.create_enclave(12345, eid, 0x40000000, PAGE_SIZE, 1) is ApiResult.PROHIBITED


# ---------------------------------------------------------------------------
# Loading discipline (§VI-A)
# ---------------------------------------------------------------------------

def test_root_page_table_must_come_first(any_system):
    sm = any_system.sm
    eid, base = _fresh_enclave(any_system)
    # level-0 before root: refused.
    assert (
        sm.allocate_page_table(OS, eid, 0x40000000, 0, base) is ApiResult.INVALID_STATE
    )
    assert sm.allocate_page_table(OS, eid, 0, 1, base) is ApiResult.OK
    # second root: refused.
    assert (
        sm.allocate_page_table(OS, eid, 0, 1, base + PAGE_SIZE) is ApiResult.INVALID_STATE
    )


def test_pages_must_ascend_physically(any_system):
    sm = any_system.sm
    eid, base = _fresh_enclave(any_system)
    assert sm.allocate_page_table(OS, eid, 0, 1, base + PAGE_SIZE) is ApiResult.OK
    # Reusing a lower physical page violates the monotonic-load rule.
    assert sm.allocate_page_table(OS, eid, 0x40000000, 0, base) is ApiResult.INVALID_VALUE


def test_page_tables_before_data(any_system):
    sm = any_system.sm
    kernel = any_system.kernel
    eid, base = _fresh_enclave(any_system)
    staging = kernel.alloc_frame() << PAGE_SHIFT
    assert sm.allocate_page_table(OS, eid, 0, 1, base) is ApiResult.OK
    assert sm.allocate_page_table(OS, eid, 0x40000000, 0, base + PAGE_SIZE) is ApiResult.OK
    assert (
        sm.load_page(OS, eid, 0x40000000, base + 2 * PAGE_SIZE, staging, RWX)
        is ApiResult.OK
    )
    # Another page table after data started: refused.
    assert (
        sm.allocate_page_table(OS, eid, 0x40400000, 0, base + 3 * PAGE_SIZE)
        is ApiResult.INVALID_STATE
    )


def test_no_virtual_aliasing(any_system):
    sm = any_system.sm
    kernel = any_system.kernel
    eid, base = _fresh_enclave(any_system)
    staging = kernel.alloc_frame() << PAGE_SHIFT
    sm.allocate_page_table(OS, eid, 0, 1, base)
    sm.allocate_page_table(OS, eid, 0x40000000, 0, base + PAGE_SIZE)
    assert sm.load_page(OS, eid, 0x40000000, base + 2 * PAGE_SIZE, staging, RWX) is ApiResult.OK
    # Same vaddr again (different physical page): refused.
    assert (
        sm.load_page(OS, eid, 0x40000000, base + 3 * PAGE_SIZE, staging, RWX)
        is ApiResult.INVALID_STATE
    )


def test_load_page_requires_enclave_owned_target(any_system):
    sm = any_system.sm
    kernel = any_system.kernel
    eid, base = _fresh_enclave(any_system)
    staging = kernel.alloc_frame() << PAGE_SHIFT
    sm.allocate_page_table(OS, eid, 0, 1, base)
    sm.allocate_page_table(OS, eid, 0x40000000, 0, base + PAGE_SIZE)
    os_frame = kernel.alloc_frame() << PAGE_SHIFT
    assert sm.load_page(OS, eid, 0x40000000, os_frame, staging, RWX) in (
        ApiResult.PROHIBITED,
        ApiResult.INVALID_VALUE,
    )


def test_load_page_requires_untrusted_source(any_system):
    sm = any_system.sm
    eid, base = _fresh_enclave(any_system)
    sm.allocate_page_table(OS, eid, 0, 1, base)
    sm.allocate_page_table(OS, eid, 0x40000000, 0, base + PAGE_SIZE)
    # Source inside the enclave's own (non-untrusted) region: refused.
    assert (
        sm.load_page(OS, eid, 0x40000000, base + 2 * PAGE_SIZE, base, RWX)
        is ApiResult.INVALID_VALUE
    )


def test_load_page_validates_acl_and_evrange(any_system):
    sm = any_system.sm
    kernel = any_system.kernel
    eid, base = _fresh_enclave(any_system)
    staging = kernel.alloc_frame() << PAGE_SHIFT
    sm.allocate_page_table(OS, eid, 0, 1, base)
    sm.allocate_page_table(OS, eid, 0x40000000, 0, base + PAGE_SIZE)
    target = base + 2 * PAGE_SIZE
    assert sm.load_page(OS, eid, 0x40000000, target, staging, 0) is ApiResult.INVALID_VALUE
    assert sm.load_page(OS, eid, 0x40000000, target, staging, 0xFF) is ApiResult.INVALID_VALUE
    assert sm.load_page(OS, eid, 0x7000000, target, staging, RWX) is ApiResult.INVALID_VALUE


# ---------------------------------------------------------------------------
# init / seal / delete
# ---------------------------------------------------------------------------

def test_init_requires_root_table(any_system):
    sm = any_system.sm
    eid, __ = _fresh_enclave(any_system)
    assert sm.init_enclave(OS, eid) is ApiResult.INVALID_STATE


def test_init_seals_against_further_loading(any_system):
    sm = any_system.sm
    kernel = any_system.kernel
    eid, base = _fresh_enclave(any_system)
    staging = kernel.alloc_frame() << PAGE_SHIFT
    sm.allocate_page_table(OS, eid, 0, 1, base)
    sm.allocate_page_table(OS, eid, 0x40000000, 0, base + PAGE_SIZE)
    assert sm.init_enclave(OS, eid) is ApiResult.OK
    assert sm.state.enclave(eid).state is EnclaveState.INITIALIZED
    assert len(sm.state.enclave(eid).measurement) == 64
    assert (
        sm.load_page(OS, eid, 0x40001000, base + 2 * PAGE_SIZE, staging, RWX)
        is ApiResult.INVALID_STATE
    )
    assert sm.init_enclave(OS, eid) is ApiResult.INVALID_STATE
    assert (
        sm.create_thread(OS, eid, sm.state.suggest_metadata(512), 0x40000000, 0)
        is ApiResult.INVALID_STATE
    )


def test_delete_blocks_all_resources(any_system):
    sm = any_system.sm
    kernel = any_system.kernel
    loaded = kernel.load_enclave(trivial_enclave_image())
    assert sm.delete_enclave(OS, loaded.eid) is ApiResult.OK
    assert sm.state.enclave(loaded.eid) is None
    for rid in loaded.rids:
        record = sm.state.resources.get(ResourceType.DRAM_REGION, rid)
        assert record.state is ResourceState.BLOCKED
    # Blocked region cannot be granted without cleaning.
    assert (
        sm.grant_resource(OS, ResourceType.DRAM_REGION, loaded.rids[0], OS)
        is ApiResult.INVALID_STATE
    )


def test_delete_refused_while_scheduled(any_system):
    sm = any_system.sm
    kernel = any_system.kernel
    # An enclave that spins forever (we never run it to completion).
    from repro import image_from_assembly

    loaded = kernel.load_enclave(image_from_assembly("loop: jal zero, loop"))
    assert sm.enter_enclave(OS, loaded.eid, loaded.tids[0], 0) is ApiResult.OK
    assert sm.delete_enclave(OS, loaded.eid) is ApiResult.INVALID_STATE
    # Force it off the core via an interrupt-induced AEX; then delete.
    kernel.machine.interrupts.send_ipi(0)
    kernel.machine.run_core(0, 100)
    sm.os_events.drain(0)
    assert sm.delete_enclave(OS, loaded.eid) is ApiResult.OK


def test_enclave_memory_scrubbed_after_clean(any_system):
    kernel = any_system.kernel
    sm = any_system.sm
    loaded = kernel.load_enclave(trivial_enclave_image())
    base = loaded.region_base
    assert kernel.machine.memory.read(base, PAGE_SIZE) != bytes(PAGE_SIZE)
    kernel.destroy_enclave(loaded.eid)
    assert kernel.machine.memory.read(base, PAGE_SIZE) == bytes(PAGE_SIZE)
