"""The compartmentalized-SM model (repro.sm.compartments).

Covers the write classifier, the arena-slice partition map, the ABI
conformance of compartment declarations, the commit-window guard's
behaviour (observed write sets, containment, rollback, quarantine,
healing), and the bool-returning metadata-arena release.
"""

import pytest

from repro import build_sanctum_system
from repro.errors import ApiResult
from repro.faults.inject import ScriptedSaboteur, sabotage_catalogue
from repro.faults.snapshot import diff_snapshots, snapshot_system
from repro.hw.core import DOMAIN_UNTRUSTED
from repro.sm.abi import API_SPECS, TRAP_SPEC
from repro.sm.compartments import (
    LOCK_TOKEN_COMPARTMENTS,
    Compartment,
    arena_slice_map,
    classify_write,
    compartments_from_locks,
    install_compartment_guard,
)
from repro.sm.resources import ResourceType
from repro.sm.state import MetadataArena
from repro.system import build_system
from tests.conftest import trivial_enclave_image

OS = DOMAIN_UNTRUSTED


# -- the write classifier ------------------------------------------------

class TestClassifyWrite:
    @pytest.mark.parametrize("path,expected", [
        ("resources.DRAM_REGION:3.owner", Compartment.RESOURCES),
        ("resources.CORE:1.state", Compartment.RESOURCES),
        ("resources.THREAD:5.owner", Compartment.SCHEDULING),
        ("enclaves.0x8000000.state", Compartment.ENCLAVE_META),
        ("enclaves.0x8000000.evrange[0]", Compartment.ENCLAVE_META),
        ("enclaves.0x8000000.measurement", Compartment.ENCLAVE_META),
        ("enclaves.0x8000000.vpn_to_ppn.262144", Compartment.ENCLAVE_META),
        ("enclaves.0x8000000.mailboxes[0].state", Compartment.MAILBOXES),
        ("enclaves.0x8000000.thread_tids", Compartment.SCHEDULING),
        ("enclaves.0x8000000.scheduled_threads", Compartment.SCHEDULING),
        ("threads.0x8001000.state", Compartment.SCHEDULING),
        ("core_thread.0", Compartment.SCHEDULING),
        ("cores[1].pc", Compartment.SCHEDULING),
        ("os_events.posted", Compartment.SCHEDULING),
        ("drbg.reseed_counter", Compartment.ATTESTATION),
        ("static.sm_secret_key", Compartment.ATTESTATION),
        ("platform_regions.2", Compartment.RESOURCES),
        ("dma_ranges[0][0]", Compartment.RESOURCES),
        ("arenas[0].base", Compartment.RESOURCES),
    ])
    def test_path_classification(self, path, expected):
        assert classify_write(path) is expected

    def test_arena_claim_owned_by_enclave(self):
        before = {"enclaves": {"0x8020000": {}}, "threads": {}}
        assert (
            classify_write("arenas[0].claims.134348800", before, before)
            is Compartment.ENCLAVE_META
        )
        assert 134348800 == 0x8020000

    def test_arena_claim_owned_by_thread(self):
        after = {"enclaves": {}, "threads": {"0x8020000": {}}}
        assert (
            classify_write("arenas[0].claims.134348800", {}, after)
            is Compartment.SCHEDULING
        )

    def test_arena_claim_appearing_only_in_after_snapshot(self):
        # create_enclave: the claim and the enclave registry entry land
        # in the same commit, so ownership is visible only in `after`.
        before = {"enclaves": {}, "threads": {}}
        after = {"enclaves": {"0x8020000": {}}, "threads": {}}
        assert (
            classify_write("arenas[0].claims.134348800", before, after)
            is Compartment.ENCLAVE_META
        )

    def test_unattributed_claim_is_arena_bookkeeping(self):
        assert (
            classify_write("arenas[0].claims.999", {}, {})
            is Compartment.RESOURCES
        )


class TestLockDerivation:
    def test_every_lock_token_maps_to_a_compartment(self):
        for spec in (*API_SPECS, TRAP_SPEC):
            for token in filter(None, (spec.locks or "").split("+")):
                assert token in LOCK_TOKEN_COMPARTMENTS, (
                    f"{spec.name}: lock token {token!r} has no compartment"
                )

    def test_compartments_from_locks(self):
        assert compartments_from_locks("") == frozenset()
        assert compartments_from_locks("enclave") == {Compartment.ENCLAVE_META}
        assert compartments_from_locks("enclave+thread+core") == {
            Compartment.ENCLAVE_META,
            Compartment.SCHEDULING,
        }


# -- ABI conformance ------------------------------------------------------

def test_every_spec_declares_its_compartments():
    for spec in (*API_SPECS, TRAP_SPEC):
        assert spec.compartments is not None, (
            f"{spec.name} has no compartment declaration"
        )
        for compartment in spec.compartments:
            assert isinstance(compartment, Compartment)


def test_read_only_calls_declare_no_compartments():
    for name in ("get_field", "get_attestation_key", "get_sealing_key"):
        spec = next(s for s in API_SPECS if s.name == name)
        assert spec.compartments == ()


# -- observed write sets stay inside declarations ------------------------

@pytest.mark.parametrize("platform", ["sanctum", "keystone"])
def test_lifecycle_commits_stay_inside_declared_compartments(platform):
    system = build_system(platform)
    sm, kernel = system.sm, system.kernel
    guard = install_compartment_guard(sm)
    loaded = kernel.load_enclave(trivial_enclave_image())
    kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert sm.get_random(OS, 16)[0] is ApiResult.OK
    kernel.destroy_enclave(loaded.eid)
    assert guard.commits_guarded > 0
    assert guard.faults_contained == 0
    by_name = {s.name: s for s in API_SPECS}
    for name, observed in guard.observed.items():
        declared = frozenset(by_name[name].compartments or ())
        assert observed <= declared, (
            f"{name} wrote {sorted(c.value for c in observed - declared)} "
            f"outside its declaration"
        )


# -- containment, rollback, quarantine, healing --------------------------

@pytest.fixture
def guarded_system():
    system = build_sanctum_system()
    guard = install_compartment_guard(system.sm)
    return system, guard


def test_cross_compartment_write_is_contained_and_rolled_back(guarded_system):
    system, guard = guarded_system
    sm, kernel = system.sm, system.kernel
    rid = kernel._donatable_regions[0]
    before = snapshot_system(sm)
    guard.saboteur = ScriptedSaboteur(sm, ["drbg-clobber"])
    result = sm.block_resource(OS, ResourceType.DRAM_REGION, rid)
    guard.saboteur = None
    assert result is ApiResult.COMPARTMENT_FAULT
    # The whole commit — sabotage AND the call's own legal writes —
    # rolled back: the snapshot diff is empty.
    assert diff_snapshots(before, snapshot_system(sm)) == []
    assert guard.faults_contained == 1
    # The misbehaving component (the call's declared compartments) is
    # out of service, not the victim compartment.
    assert guard.quarantined == {Compartment.RESOURCES, Compartment.SCHEDULING}


def test_quarantine_refuses_service_and_heal_restores_it(guarded_system):
    system, guard = guarded_system
    sm, kernel = system.sm, system.kernel
    rid = kernel._donatable_regions[0]
    guard.saboteur = ScriptedSaboteur(sm, ["secret-key-leak"])
    assert sm.block_resource(OS, ResourceType.DRAM_REGION, rid) \
        is ApiResult.COMPARTMENT_FAULT
    guard.saboteur = None
    # Quarantined compartments refuse before validation ever runs.
    assert sm.block_resource(OS, ResourceType.DRAM_REGION, rid) \
        is ApiResult.COMPARTMENT_FAULT
    # Healthy compartments keep working: attestation was the victim,
    # not the faulting component, so randomness still serves.
    code, data = sm.get_random(OS, 8)
    assert code is ApiResult.OK and len(data) == 8
    guard.heal()
    assert guard.quarantined == set()
    assert sm.block_resource(OS, ResourceType.DRAM_REGION, rid) is ApiResult.OK


def test_sabotage_inside_declared_compartment_is_invisible(guarded_system):
    # A corruption *inside* the declared set is indistinguishable from
    # the call's own writes — by design the guard cannot flag it.  This
    # pins the detection boundary (and the fuzzer harness's escape
    # check builds on exactly this blindness).
    system, guard = guarded_system
    sm, kernel = system.sm, system.kernel
    rid = kernel._donatable_regions[0]
    guard.saboteur = ScriptedSaboteur(sm, ["region-owner-flip"])
    result = sm.block_resource(OS, ResourceType.DRAM_REGION, rid)
    guard.saboteur = None
    assert result is not ApiResult.COMPARTMENT_FAULT
    assert guard.faults_contained == 0


def test_install_is_idempotent(guarded_system):
    system, guard = guarded_system
    assert install_compartment_guard(system.sm) is guard


def test_sabotage_catalogue_covers_every_compartment():
    covered = {entry.compartment for entry in sabotage_catalogue()}
    assert covered == set(Compartment)


# -- the arena-slice partition map ---------------------------------------

def test_arena_slice_map_partitions_claims_by_owner():
    system = build_sanctum_system()
    sm, kernel = system.sm, system.kernel
    loaded = kernel.load_enclave(trivial_enclave_image())
    arenas = arena_slice_map(sm.state)
    assert len(arenas) == len(sm.state.metadata_arenas)
    slices = [s for arena in arenas for s in arena["slices"]]
    owners = {s["base"]: s["compartment"] for s in slices}
    assert owners[loaded.eid] is Compartment.ENCLAVE_META
    for tid in loaded.tids:
        assert owners[tid] is Compartment.SCHEDULING
    for arena, live in zip(arenas, sm.state.metadata_arenas):
        assert arena["base"] == live.base and arena["size"] == live.size
        for s in arena["slices"]:
            assert live.claims[s["base"]] == s["size"]


# -- MetadataArena.release returns a useful bool -------------------------

class TestArenaRelease:
    def test_release_reports_whether_a_claim_existed(self):
        arena = MetadataArena(base=0x1000, size=0x1000)
        assert arena.claim(0x1100, 0x100)
        assert arena.release(0x1100) is True
        assert arena.release(0x1100) is False  # double release detected
        assert arena.release(0x1900) is False  # never claimed

    def test_release_metadata_scans_all_arenas(self):
        system = build_sanctum_system()
        state = system.sm.state
        paddr = state.suggest_metadata(64)
        assert state.claim_metadata(paddr, 64)
        assert state.release_metadata(paddr) is True
        assert state.release_metadata(paddr) is False

    def test_delete_enclave_releases_exactly_once(self):
        system = build_sanctum_system()
        sm, kernel = system.sm, system.kernel
        loaded = kernel.load_enclave(trivial_enclave_image())
        kernel.destroy_enclave(loaded.eid)
        # The eid claim is gone; a second release is detectable.
        assert sm.state.release_metadata(loaded.eid) is False
