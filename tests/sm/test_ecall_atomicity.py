"""Regression tests: error-returning calls leave no side effects (§V-A).

Each test pins one mutation-before-validation bug found by auditing the
API/ecall paths against the transaction discipline:

* ``GET_MAIL`` consumed the pending message before validating the
  destination buffers — a bad pointer *lost the mail* on an error
  return.
* ``GET_RANDOM`` advanced the DRBG before validating the destination —
  a bad pointer left the generator state mutated on an error return.
* ``create_thread`` claimed the thread-metadata arena range before
  taking the enclave lock — a lock conflict leaked the claim.
* Keystone ``create_enclave_region`` registered the region before
  reprogramming PMPs — slot exhaustion escaped as a ``RuntimeError``
  crash and left the region table mutated (found by the fuzzer,
  seed 0 on keystone).
"""

from __future__ import annotations

from repro import image_from_assembly
from repro.errors import ApiResult
from repro.faults import AtomicityChecker
from repro.faults.inject import forced_lock_conflict
from repro.hw.core import DOMAIN_UNTRUSTED
from repro.sm.api import EnclaveEcall
from repro.sm.enclave import (
    ENCLAVE_METADATA_BASE_SIZE,
    ENCLAVE_METADATA_PER_MAILBOX,
)
from repro.sm.mailbox import MailboxState
from repro.sm.thread import THREAD_METADATA_SIZE

OS = DOMAIN_UNTRUSTED

#: In-evrange but never mapped: translation fails, so it is an invalid
#: destination for SM writes into the enclave.
BAD_DEST = 0x40000000 + 0xF000


def _drbg_fingerprint(sm):
    drbg = sm.state.drbg
    return (drbg._state, drbg._reseed_counter, drbg._generates_since_reseed)


def test_get_mail_bad_destination_does_not_consume_mail(sanctum_system):
    system = sanctum_system
    kernel = system.kernel
    sm = system.sm
    out = kernel.alloc_buffer(1)
    get_mail, exit_call = int(EnclaveEcall.GET_MAIL), int(EnclaveEcall.EXIT_ENCLAVE)
    source = f"""
_start:
    li   a0, {get_mail}
    li   a1, 0
    li   a2, {BAD_DEST}          # unmapped message destination
    li   a3, sender_buf
    ecall
    sw   a0, {out}(zero)         # expect INVALID_VALUE
    li   a0, {get_mail}
    li   a1, 0
    li   a2, msg_buf
    li   a3, sender_buf
    ecall
    sw   a0, {out + 4}(zero)     # expect OK: the mail must still be there
    li   t1, msg_buf
    lw   t2, 0(t1)
    sw   t2, {out + 8}(zero)
    li   a0, {exit_call}
    ecall
    .align 8
msg_buf:
    .zero 256
sender_buf:
    .zero 64
"""
    loaded = kernel.load_enclave(image_from_assembly(source, entry_symbol="_start"))
    assert sm.accept_mail(loaded.eid, 0, OS) is ApiResult.OK
    assert sm.send_mail(OS, loaded.eid, b"keep") is ApiResult.OK
    enclave = sm.state.enclave(loaded.eid)
    assert enclave.mailboxes[0].state is MailboxState.FULL

    kernel.enter_and_run(loaded.eid, loaded.tids[0])

    assert kernel.read_shared(out, 4) == int(ApiResult.INVALID_VALUE).to_bytes(4, "little")
    assert kernel.read_shared(out + 4, 4) == int(ApiResult.OK).to_bytes(4, "little")
    assert kernel.read_shared(out + 8, 4) == b"keep", (
        "the failed GET_MAIL must not have consumed the message"
    )


def test_get_random_bad_destination_leaves_drbg_untouched(sanctum_system):
    system = sanctum_system
    kernel = system.kernel
    sm = system.sm
    out = kernel.alloc_buffer(1)
    get_random, exit_call = int(EnclaveEcall.GET_RANDOM), int(EnclaveEcall.EXIT_ENCLAVE)
    source = f"""
_start:
    li   a0, {get_random}
    li   a1, {BAD_DEST}          # unmapped destination
    li   a2, 64
    ecall
    sw   a0, {out}(zero)         # expect INVALID_VALUE
    li   a0, {exit_call}
    ecall
"""
    loaded = kernel.load_enclave(image_from_assembly(source, entry_symbol="_start"))
    before = _drbg_fingerprint(sm)
    kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert kernel.read_shared(out, 4) == int(ApiResult.INVALID_VALUE).to_bytes(4, "little")
    assert _drbg_fingerprint(sm) == before, (
        "the failed GET_RANDOM must not have advanced the DRBG"
    )


def test_get_random_oversized_length_rejected_without_generate(sanctum_system):
    system = sanctum_system
    kernel = system.kernel
    sm = system.sm
    out = kernel.alloc_buffer(1)
    get_random, exit_call = int(EnclaveEcall.GET_RANDOM), int(EnclaveEcall.EXIT_ENCLAVE)
    source = f"""
_start:
    li   a0, {get_random}
    li   a1, dst
    li   a2, 8192                # > 4096: rejected before translation
    ecall
    sw   a0, {out}(zero)
    li   a0, {exit_call}
    ecall
    .align 8
dst:
    .zero 8
"""
    loaded = kernel.load_enclave(image_from_assembly(source, entry_symbol="_start"))
    before = _drbg_fingerprint(sm)
    kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert kernel.read_shared(out, 4) == int(ApiResult.INVALID_VALUE).to_bytes(4, "little")
    assert _drbg_fingerprint(sm) == before


def test_create_thread_lock_conflict_leaks_no_metadata_claim(any_system):
    sm = any_system.sm
    eid = sm.state.suggest_metadata(
        ENCLAVE_METADATA_BASE_SIZE + ENCLAVE_METADATA_PER_MAILBOX
    )
    assert sm.create_enclave(OS, eid, 0x40000000, 0x10000, 1) is ApiResult.OK
    tid = sm.state.suggest_metadata(THREAD_METADATA_SIZE)
    claims_before = [dict(arena.claims) for arena in sm.state.metadata_arenas]

    with forced_lock_conflict(at_acquisition=1) as injector:
        result = sm.create_thread(OS, eid, tid, 0x40000000, 0x40001000)
    assert injector.fired
    assert result is ApiResult.LOCK_CONFLICT
    assert [dict(a.claims) for a in sm.state.metadata_arenas] == claims_before, (
        "LOCK_CONFLICT leaked a thread-metadata arena claim"
    )

    # The identical retry must succeed — nothing of the failed attempt
    # may linger.
    assert sm.create_thread(OS, eid, tid, 0x40000000, 0x40001000) is ApiResult.OK


def test_pmp_slot_exhaustion_is_an_error_not_a_crash(keystone_system):
    sm = keystone_system.sm
    eid = sm.state.suggest_metadata(
        ENCLAVE_METADATA_BASE_SIZE + ENCLAVE_METADATA_PER_MAILBOX
    )
    assert sm.create_enclave(OS, eid, 0x40000000, 0x10000, 1) is ApiResult.OK

    # Carve single-page regions from the top of DRAM until the PMP
    # runs out of slots: the SM must answer INVALID_VALUE, not raise.
    base = keystone_system.machine.config.dram_size
    results = []
    for _ in range(64):
        base -= 0x1000
        results.append(sm.create_enclave_region(OS, eid, base, 0x1000))
        if results[-1] is not ApiResult.OK:
            break
    assert results[-1] is ApiResult.INVALID_VALUE, (
        "PMP exhaustion escaped as something other than an API error"
    )
    assert ApiResult.OK in results, "expected some regions to fit first"

    # And the failed creation left nothing behind: the region table is
    # unchanged and a later attempt fails identically (no half-created
    # region, no burned region id).
    region_ids = sm.platform.region_ids()
    assert sm.create_enclave_region(OS, eid, base - 0x2000, 0x1000) is (
        ApiResult.INVALID_VALUE
    )
    assert sm.platform.region_ids() == region_ids


# ---------------------------------------------------------------------------
# Error paths proven side-effect free under the journal and the
# invariant guard (the fixtures install the guard, so every dispatch
# below also re-checks the global invariants on return).
# ---------------------------------------------------------------------------

def test_get_field_unknown_id_is_proven_side_effect_free(sanctum_system):
    sm = sanctum_system.sm
    checker = AtomicityChecker(sm)
    result, data = checker.checked_call(
        lambda: sm.get_field(OS, 999), label="get_field"
    )
    assert result is ApiResult.INVALID_VALUE and data == b""
    assert checker.calls_checked == 1
    assert checker.errors_verified == 1, (
        "the error return must be journal-verified clean, not just returned"
    )


def test_get_self_measurement_bad_dest_then_good_dest(sanctum_system):
    system = sanctum_system
    kernel = system.kernel
    sm = system.sm
    out = kernel.alloc_buffer(1)
    gsm = int(EnclaveEcall.GET_SELF_MEASUREMENT)
    exit_call = int(EnclaveEcall.EXIT_ENCLAVE)
    source = f"""
_start:
    li   a0, {gsm}
    li   a1, {BAD_DEST}          # unmapped destination
    ecall
    sw   a0, {out}(zero)         # expect INVALID_VALUE
    li   a0, {gsm}
    li   a1, meas_buf
    ecall
    sw   a0, {out + 4}(zero)     # expect OK
    li   t1, meas_buf
    lw   t2, 0(t1)
    sw   t2, {out + 8}(zero)
    li   a0, {exit_call}
    ecall
    .align 8
meas_buf:
    .zero 64
"""
    loaded = kernel.load_enclave(image_from_assembly(source, entry_symbol="_start"))
    kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert kernel.read_shared(out, 4) == int(ApiResult.INVALID_VALUE).to_bytes(4, "little")
    assert kernel.read_shared(out + 4, 4) == int(ApiResult.OK).to_bytes(4, "little")
    assert kernel.read_shared(out + 8, 4) == sm.enclave_measurement(loaded.eid)[:4], (
        "the retry must deliver the enclave's real measurement"
    )


def test_resume_from_aex_without_pending_state_is_an_error(sanctum_system):
    system = sanctum_system
    kernel = system.kernel
    sm = system.sm
    out = kernel.alloc_buffer(1)
    resume = int(EnclaveEcall.RESUME_FROM_AEX)
    exit_call = int(EnclaveEcall.EXIT_ENCLAVE)
    source = f"""
_start:
    li   a0, {resume}
    ecall
    sw   a0, {out}(zero)         # expect INVALID_STATE, and keep running
    li   a0, {exit_call}
    ecall
"""
    loaded = kernel.load_enclave(image_from_assembly(source, entry_symbol="_start"))
    kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert kernel.read_shared(out, 4) == int(ApiResult.INVALID_STATE).to_bytes(4, "little")
    thread = sm.state.threads[loaded.tids[0]]
    assert not thread.aex_present, (
        "a failed RESUME_FROM_AEX must not fabricate a pending AEX dump"
    )


def test_fault_return_without_pending_fault_is_an_error(sanctum_system):
    system = sanctum_system
    kernel = system.kernel
    sm = system.sm
    out = kernel.alloc_buffer(1)
    fault_return = int(EnclaveEcall.FAULT_RETURN)
    exit_call = int(EnclaveEcall.EXIT_ENCLAVE)
    source = f"""
_start:
    li   a0, {fault_return}
    ecall
    sw   a0, {out}(zero)         # expect INVALID_STATE, and keep running
    li   a0, {exit_call}
    ecall
"""
    loaded = kernel.load_enclave(image_from_assembly(source, entry_symbol="_start"))
    kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert kernel.read_shared(out, 4) == int(ApiResult.INVALID_STATE).to_bytes(4, "little")
    thread = sm.state.threads[loaded.tids[0]]
    assert not thread.fault_present, (
        "a failed FAULT_RETURN must not fabricate a pending fault frame"
    )
