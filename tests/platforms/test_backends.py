"""The Sanctum and Keystone isolation backends (§VII)."""

import pytest

from repro.hw.core import DOMAIN_SM, DOMAIN_UNTRUSTED
from repro.hw.machine import Machine, MachineConfig
from repro.hw.paging import AccessType
from repro.hw.pmp import Privilege
from repro.platforms.base import OWNER_FREE
from repro.platforms.keystone import KeystonePlatform
from repro.platforms.sanctum import SanctumPlatform


def _machine():
    return Machine(MachineConfig(n_cores=2, dram_size=32 * 1024 * 1024, llc_sets=256))


# ---------------------------------------------------------------------------
# Sanctum
# ---------------------------------------------------------------------------

def test_sanctum_region_geometry():
    machine = _machine()
    platform = SanctumPlatform(machine, n_regions=8)
    assert platform.region_size == 4 * 1024 * 1024
    assert platform.region_ids() == list(range(8))
    assert platform.region_of(0) == 0
    assert platform.region_of(platform.region_size) == 1
    assert platform.region_of(machine.config.dram_size) is None
    assert platform.region_range(3) == (3 * platform.region_size, platform.region_size)
    with pytest.raises(ValueError):
        platform.region_range(8)


def test_sanctum_rejects_bad_region_count():
    with pytest.raises(ValueError):
        SanctumPlatform(_machine(), n_regions=7)


def test_sanctum_access_rules():
    machine = _machine()
    platform = SanctumPlatform(machine, n_regions=8)
    platform.assign_region(0, DOMAIN_SM)
    eid = 0x40000
    platform.assign_region(2, eid)
    core = machine.cores[0]
    core.privilege = Privilege.S

    def allowed(domain, paddr):
        core.domain = domain
        return platform.check_access(core, paddr, AccessType.LOAD)

    region = platform.region_size
    # OS memory reachable by everyone (shared buffers).
    assert allowed(DOMAIN_UNTRUSTED, region * 1) and allowed(eid, region * 1)
    # Enclave memory only by the enclave.
    assert allowed(eid, region * 2) and not allowed(DOMAIN_UNTRUSTED, region * 2)
    # SM memory by nobody below M-mode.
    assert not allowed(DOMAIN_UNTRUSTED, 0) and not allowed(eid, 0)
    core.privilege = Privilege.M
    assert platform.check_access(core, 0, AccessType.STORE)
    core.privilege = Privilege.S
    # Free regions by nobody.
    platform.assign_region(3, OWNER_FREE)
    assert not allowed(DOMAIN_UNTRUSTED, region * 3) and not allowed(eid, region * 3)
    # Off-DRAM by nobody.
    assert not allowed(DOMAIN_UNTRUSTED, machine.config.dram_size + 4)


def test_sanctum_clean_region_scrubs_everything():
    machine = _machine()
    platform = SanctumPlatform(machine, n_regions=8)
    eid = 0x40000
    platform.assign_region(2, eid)
    base, size = platform.region_range(2)
    machine.memory.write(base, b"secret!!")
    machine.llc.access(base, eid)
    machine.cores[0].l1.access(base, eid)
    machine.cores[0].tlb.insert(eid, __import__("repro.hw.paging", fromlist=["Translation"]).Translation(1, 2, True, True, True))
    platform.clean_region(2)
    assert machine.memory.read(base, 8) == bytes(8)
    assert not machine.llc.probe(base)
    assert not machine.cores[0].l1.probe(base)
    assert len(machine.cores[0].tlb) == 0
    assert platform.region_owner(2) == OWNER_FREE


def test_sanctum_llc_partition_flag():
    machine = _machine()
    SanctumPlatform(machine, n_regions=8, llc_partitioned=True)
    assert machine.llc.partitioned
    machine2 = _machine()
    SanctumPlatform(machine2, n_regions=8, llc_partitioned=False)
    assert not machine2.llc.partitioned


# ---------------------------------------------------------------------------
# Keystone
# ---------------------------------------------------------------------------

def test_keystone_dynamic_regions():
    machine = _machine()
    platform = KeystonePlatform(machine)
    rid = platform.create_region(0x100000, 0x100000, DOMAIN_SM)
    assert platform.region_of(0x100000) == rid
    assert platform.region_of(0x1FFFFF) == rid
    assert platform.region_of(0x200000) is None
    assert platform.region_range(rid) == (0x100000, 0x100000)
    platform.delete_region(rid)
    assert platform.region_of(0x100000) is None


def test_keystone_rejects_overlap_and_out_of_range():
    machine = _machine()
    platform = KeystonePlatform(machine)
    platform.create_region(0x100000, 0x100000, DOMAIN_SM)
    with pytest.raises(ValueError):
        platform.create_region(0x180000, 0x100000, 99)
    with pytest.raises(ValueError):
        platform.create_region(machine.config.dram_size - 0x1000, 0x2000, 99)
    with pytest.raises(ValueError):
        platform.create_region(0x300000, 0, 99)


def test_keystone_pmp_programming_per_domain():
    machine = _machine()
    platform = KeystonePlatform(machine)
    platform.create_region(0, 0x100000, DOMAIN_SM)
    eid = 0x40000
    rid = platform.create_region(0x200000, 0x100000, eid)
    core = machine.cores[0]
    core.privilege = Privilege.U

    # OS context: SM and enclave regions hidden, rest open.
    core.domain = DOMAIN_UNTRUSTED
    platform.configure_core(core)
    assert not platform.check_access(core, 0x1000, AccessType.LOAD)
    assert not platform.check_access(core, 0x200000, AccessType.LOAD)
    assert platform.check_access(core, 0x500000, AccessType.LOAD)

    # Enclave context: own region visible, SM still hidden, OS open.
    core.domain = eid
    platform.configure_core(core)
    assert platform.check_access(core, 0x200000, AccessType.STORE)
    assert not platform.check_access(core, 0x1000, AccessType.LOAD)
    assert platform.check_access(core, 0x500000, AccessType.LOAD)

    # Another enclave's context cannot see this region.
    core.domain = 0x99999
    platform.configure_core(core)
    assert not platform.check_access(core, 0x200000, AccessType.LOAD)


def test_keystone_llc_unpartitioned():
    machine = _machine()
    KeystonePlatform(machine)
    assert not machine.llc.partitioned


def test_keystone_assign_region_reprograms_cores():
    machine = _machine()
    platform = KeystonePlatform(machine)
    eid_a, eid_b = 0x40000, 0x50000
    rid = platform.create_region(0x300000, 0x100000, eid_a)
    core = machine.cores[0]
    core.privilege = Privilege.U
    core.domain = eid_a
    platform.configure_core(core)
    assert platform.check_access(core, 0x300000, AccessType.LOAD)
    platform.assign_region(rid, eid_b)
    # Reassignment reprogrammed PMP everywhere: eid_a loses access.
    assert not platform.check_access(core, 0x300000, AccessType.LOAD)
