"""Platform resource limits and edge geometry."""

import pytest

from repro.hw.core import DOMAIN_SM
from repro.hw.machine import Machine, MachineConfig
from repro.platforms.keystone import KeystonePlatform
from repro.platforms.sanctum import SanctumPlatform


def test_keystone_pmp_slot_exhaustion_is_loud():
    """Too many live regions for the PMP is a clean error, not UB.

    Capacity is enforced at region admission (``ValueError``, which the
    SM API maps to ``INVALID_VALUE``) rather than erupting later from
    ``configure_core`` — the fault-injection fuzzer showed the late
    ``RuntimeError`` escaping ``enter_enclave`` as an SM crash.
    """
    machine = Machine(MachineConfig(n_cores=1, dram_size=32 * 1024 * 1024, llc_sets=256))
    platform = KeystonePlatform(machine)
    created = 0
    with pytest.raises(ValueError, match="PMP capacity"):
        for i in range(32):
            platform.create_region(i * 0x100000, 0x100000, DOMAIN_SM)
            created += 1
    # A healthy number of regions fit before the limit.
    assert created >= 10
    # The refused region left no trace: the table still reprograms
    # every core, and the successful count is stable.
    assert len(platform.region_ids()) == created


def test_keystone_region_ids_never_recycle():
    machine = Machine(MachineConfig(n_cores=1, dram_size=32 * 1024 * 1024, llc_sets=256))
    platform = KeystonePlatform(machine)
    first = platform.create_region(0x100000, 0x1000, 7)
    platform.delete_region(first)
    second = platform.create_region(0x100000, 0x1000, 7)
    assert second != first, "stale rids must never alias a new region"


def test_sanctum_single_region_machine():
    """Degenerate geometry: one region spanning all DRAM still works."""
    machine = Machine(MachineConfig(n_cores=1, dram_size=16 * 1024 * 1024, llc_sets=256))
    platform = SanctumPlatform(machine, n_regions=1)
    assert platform.region_of(0) == 0
    assert platform.region_range(0) == (0, 16 * 1024 * 1024)


def test_sanctum_llc_partition_requires_divisibility():
    machine = Machine(MachineConfig(n_cores=1, dram_size=16 * 1024 * 1024, llc_sets=96))
    with pytest.raises(ValueError):
        SanctumPlatform(machine, n_regions=64)  # 96 sets / 64 regions


def test_paper_geometry_partition_math():
    """64 regions × 512 LLC sets: each region owns exactly 8 sets."""
    machine = Machine(
        MachineConfig(n_cores=1, dram_size=2 * 1024 * 1024 * 1024, llc_sets=512)
    )
    platform = SanctumPlatform(machine, n_regions=64)
    llc = machine.llc
    owners = {}
    for region in range(64):
        base = region * platform.region_size
        for offset in (0, 64, 4096, platform.region_size - 64):
            owners.setdefault(region, set()).add(llc.set_index(base + offset))
    all_sets = set()
    for region, sets in owners.items():
        assert all(llc.region_of_set(s) == region for s in sets)
        all_sets |= sets
    # Disjointness across regions.
    assert len(all_sets) == sum(len(s) for s in owners.values())
