"""Protocol robustness: hostile OS behaviour inside the Fig.-7 script.

The OS relays ids and schedules enclaves; these tests let it misbehave
at each relay point and check that the *enclaves* (not the driver)
catch it, reporting errors through their status words rather than
leaking or wedging.
"""

import pytest

from repro.errors import ApiResult
from repro.sdk.measure import predict_measurement
from repro.sdk.signing_enclave import build_signing_enclave_image
from repro.sm.events import OsEventKind


def _boot_signing(system):
    kernel = system.kernel
    page = kernel.alloc_buffer(1)
    image = build_signing_enclave_image(page)
    system.sm.register_signing_enclave(
        predict_measurement(image, system.boot.sm_measurement, system.platform.name)
    )
    return kernel.load_enclave(image), page


def test_signer_rejects_bogus_client_eid(any_system):
    """The OS hands the signer a garbage client id: the accept_mail
    ecall fails and the signer reports it, without wedging."""
    kernel = any_system.kernel
    signing, page = _boot_signing(any_system)
    kernel.write_shared(page, (0xDEAD00).to_bytes(4, "little"))
    events = kernel.enter_and_run(signing.eid, signing.tids[0])
    assert events[0].kind is OsEventKind.ENCLAVE_EXIT
    status = kernel.machine.memory.read_u32(page + 0x40)
    assert status == 0x100 + int(ApiResult.UNKNOWN_RESOURCE)


def test_signer_reports_empty_mailbox(any_system):
    """Scheduling the sign phase before any client sent mail fails
    cleanly (MAILBOX_STATE), and the signer can be rescheduled later."""
    from tests.conftest import trivial_enclave_image

    kernel = any_system.kernel
    signing, page = _boot_signing(any_system)
    client = kernel.load_enclave(trivial_enclave_image())
    kernel.write_shared(page, client.eid.to_bytes(4, "little"))
    # Phase 0 (accept) succeeds.
    kernel.enter_and_run(signing.eid, signing.tids[0])
    assert kernel.machine.memory.read_u32(page + 0x40) == 1
    # Phase 1 without any mail: the GET_MAIL ecall fails.
    kernel.enter_and_run(signing.eid, signing.tids[0])
    status = kernel.machine.memory.read_u32(page + 0x40)
    assert status == 0x100 + int(ApiResult.MAILBOX_STATE)


def test_signer_key_release_is_invisible_to_os(any_system):
    """After the signer fetched the SM key, no OS-readable memory holds it."""
    kernel = any_system.kernel
    signing, page = _boot_signing(any_system)
    kernel.write_shared(page, (0xDEAD00).to_bytes(4, "little"))
    kernel.enter_and_run(signing.eid, signing.tids[0])  # fetches the key first
    secret = any_system.boot.sm_secret_key
    # Scan all untrusted memory the OS can read for the key bytes.
    from repro.hw.core import DOMAIN_UNTRUSTED
    from repro.sm.resources import ResourceState, ResourceType

    memory = kernel.machine.memory
    for record in any_system.sm.state.resources.all_records():
        if record.rtype is not ResourceType.DRAM_REGION:
            continue
        if record.owner != DOMAIN_UNTRUSTED or record.state is not ResourceState.OWNED:
            continue
        base, size = any_system.platform.region_range(record.rid)
        for frame in memory.touched_frames():
            paddr = frame << 12
            if base <= paddr < base + size:
                assert secret not in memory.read(paddr, 4096), (
                    f"SM secret key visible in untrusted frame {paddr:#x}"
                )


def test_driver_detects_wedged_protocol(any_system):
    """A client that never produces status=1 surfaces as ProtocolError."""
    from repro import image_from_assembly
    from repro.sdk.protocol import ProtocolError, run_remote_attestation

    broken_client = image_from_assembly(
        "entry:\n    li a0, 0\n    ecall\n"  # exits without doing anything
    )
    with pytest.raises(ProtocolError):
        run_remote_attestation(any_system, client_image=broken_client)
