"""The attested secure channel (Fig. 7 step ⑩), host and enclave sides."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CryptoError
from repro.sdk.channel import SEALED_LEN, SealedWord, open_word, seal_word
from repro.sdk.protocol import ProtocolError, run_channel_exchange, run_remote_attestation

KEY = b"\x42" * 32
NONCE = b"\x07" * 8


# ---------------------------------------------------------------------------
# Host-side scheme
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2**32 - 1), st.binary(min_size=8, max_size=8))
@settings(max_examples=30, deadline=None)
def test_seal_open_roundtrip(value, nonce):
    assert open_word(KEY, seal_word(KEY, nonce, value)) == value


def test_tampering_detected_everywhere():
    sealed = seal_word(KEY, NONCE, 1234)
    for index in range(SEALED_LEN):
        raw = bytearray(sealed.to_bytes())
        raw[index] ^= 1
        with pytest.raises(CryptoError):
            open_word(KEY, SealedWord.from_bytes(bytes(raw)))


def test_wrong_key_rejected():
    sealed = seal_word(KEY, NONCE, 1234)
    with pytest.raises(CryptoError):
        open_word(b"\x43" * 32, sealed)


def test_nonce_freshness_changes_wire_bytes():
    a = seal_word(KEY, b"\x01" * 8, 55)
    b = seal_word(KEY, b"\x02" * 8, 55)
    assert a.ciphertext != b.ciphertext and a.mac != b.mac


def test_parameter_validation():
    with pytest.raises(CryptoError):
        seal_word(b"short", NONCE, 1)
    with pytest.raises(CryptoError):
        seal_word(KEY, b"short", 1)
    with pytest.raises(CryptoError):
        SealedWord.from_bytes(b"too short")


# ---------------------------------------------------------------------------
# End to end against the in-VM enclave service
# ---------------------------------------------------------------------------

def test_channel_exchange_roundtrips(any_system):
    outcome = run_remote_attestation(any_system)
    assert outcome.channel_ok
    assert run_channel_exchange(any_system, outcome, 41) == 42
    # The channel stays up for further messages, each under fresh nonces.
    assert run_channel_exchange(any_system, outcome, 42) == 43
    assert run_channel_exchange(any_system, outcome, 0xFFFFFFFF) == 0


def test_channel_enclave_rejects_tampered_command(any_system):
    outcome = run_remote_attestation(any_system)
    sealed = seal_word(outcome.session_key, NONCE, 7)
    raw = bytearray(sealed.to_bytes())
    raw[-1] ^= 1  # corrupt the MAC
    any_system.kernel.write_shared(outcome.client_page + 0x160, bytes(raw))
    events = any_system.kernel.enter_and_run(outcome.client_eid, outcome.client_tid)
    status = any_system.machine.memory.read_u32(outcome.client_page + 0x40)
    assert status == 2, "the enclave must refuse a forged command"


def test_channel_needs_the_attested_key(any_system):
    """An OS that never learned the session key cannot speak on the channel."""
    outcome = run_remote_attestation(any_system)
    wrong_key = b"\x13" * 32
    sealed = seal_word(wrong_key, NONCE, 7)
    any_system.kernel.write_shared(outcome.client_page + 0x160, sealed.to_bytes())
    any_system.kernel.enter_and_run(outcome.client_eid, outcome.client_tid)
    status = any_system.machine.memory.read_u32(outcome.client_page + 0x40)
    assert status == 2
