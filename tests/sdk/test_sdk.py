"""SDK: runtime wrapper, ecall stubs, and the attestation protocol."""

import pytest

from repro import image_from_assembly
from repro.hw.asm import assemble
from repro.sdk import ecall
from repro.sdk.measure import predict_measurement
from repro.sdk.local_attestation import run_local_attestation
from repro.sdk.protocol import ProtocolError, run_remote_attestation
from repro.sdk.runtime import exit_sequence, with_runtime
from repro.sm.events import OsEventKind


# ---------------------------------------------------------------------------
# Runtime / ecall stubs assemble and behave
# ---------------------------------------------------------------------------

def test_with_runtime_defines_start():
    source = with_runtime("main:\n    halt\n")
    image = assemble(source)
    assert image.symbol("_start") == 0
    assert image.symbol("main") > 0


def test_without_resume_skips_prologue():
    source = with_runtime("main:\n    halt\n", resume_on_aex=False)
    assert "RESUME_FROM_AEX" not in source


def test_all_stubs_assemble():
    source = "\n".join(
        [
            "start:",
            ecall.get_random("buf", 16),
            ecall.accept_mail(0, "0x40000"),
            ecall.accept_mail(1, "gp"),
            ecall.send_mail("0x40000", "buf", 16),
            ecall.send_mail("gp", "buf", 8),
            ecall.get_mail(0, "buf", "buf"),
            ecall.get_field(1, "buf"),
            ecall.get_self_measurement("buf"),
            ecall.get_attestation_key("buf"),
            ecall.block_resource(1, "2"),
            ecall.accept_resource(2, "t0"),
            ecall.fault_return(),
            ecall.resume_from_aex(),
            ecall.exit_enclave(),
            "buf:",
            "    .zero 64",
        ]
    )
    assemble(source)


def test_memcpy_generates_unique_labels():
    source = "start:\n" + ecall.memcpy("a", "b", 8) + ecall.memcpy("a", "b", 8)
    source += "a:\n    .zero 8\nb:\n    .zero 8\n    halt\n"
    assemble(source)  # duplicate labels would raise


def test_runtime_ignores_stale_aex_flag(any_system):
    """A program built without resume restarts cleanly after AEX."""
    kernel = any_system.kernel
    out = kernel.alloc_buffer(1)
    source = with_runtime(
        f"""
main:
    lw   t0, {out}(zero)
    addi t0, t0, 1
    sw   t0, {out}(zero)
{exit_sequence()}""",
        resume_on_aex=False,
    )
    loaded = kernel.load_enclave(image_from_assembly(source, entry_symbol="_start"))
    events = kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert events[0].kind is OsEventKind.ENCLAVE_EXIT
    assert kernel.machine.memory.read_u32(out) == 1


# ---------------------------------------------------------------------------
# In-VM ecall behaviour
# ---------------------------------------------------------------------------

def test_get_random_and_self_measurement_in_vm(any_system):
    kernel = any_system.kernel
    out = kernel.alloc_buffer(1)
    source = f"""
entry:
    li   a0, 5                      # GET_RANDOM
    li   a1, rand_buf
    li   a2, 16
    ecall
    li   a0, 11                     # GET_SELF_MEASUREMENT
    li   a1, meas_buf
    ecall
    li   t0, 0
export:
    li   t1, rand_buf
    add  t1, t1, t0
    lbu  t2, 0(t1)
    li   t1, {out}
    add  t1, t1, t0
    sb   t2, 0(t1)
    addi t0, t0, 1
    li   t1, 80
    bltu t0, t1, export
    li   a0, 0
    ecall
    .align 8
rand_buf:
    .zero 16
meas_buf:
    .zero 64
"""
    loaded = kernel.load_enclave(image_from_assembly(source))
    kernel.enter_and_run(loaded.eid, loaded.tids[0])
    random_bytes = kernel.read_shared(out, 16)
    measurement = kernel.read_shared(out + 16, 64)
    assert random_bytes != bytes(16)
    assert measurement == any_system.sm.enclave_measurement(loaded.eid)


def test_bad_ecall_number_returns_invalid(any_system):
    kernel = any_system.kernel
    out = kernel.alloc_buffer(1)
    source = f"""
entry:
    li   a0, 999
    ecall
    sw   a0, {out}(zero)
    li   a0, 0
    ecall
"""
    loaded = kernel.load_enclave(image_from_assembly(source))
    kernel.enter_and_run(loaded.eid, loaded.tids[0])
    from repro.errors import ApiResult

    assert kernel.machine.memory.read_u32(out) == ApiResult.INVALID_VALUE


def test_ecall_buffer_outside_evrange_rejected(any_system):
    """SM never dereferences OS-translated pointers for an enclave."""
    kernel = any_system.kernel
    shared = kernel.alloc_buffer(1)
    out = kernel.alloc_buffer(1)
    source = f"""
entry:
    li   a0, 5                      # GET_RANDOM into *shared* memory
    li   a1, {shared}
    li   a2, 8
    ecall
    sw   a0, {out}(zero)
    li   a0, 0
    ecall
"""
    loaded = kernel.load_enclave(image_from_assembly(source))
    kernel.enter_and_run(loaded.eid, loaded.tids[0])
    from repro.errors import ApiResult

    assert kernel.machine.memory.read_u32(out) == ApiResult.INVALID_VALUE
    assert kernel.read_shared(shared, 8) == bytes(8)


# ---------------------------------------------------------------------------
# Protocols end to end
# ---------------------------------------------------------------------------

def test_local_attestation_fig6(any_system):
    outcome = run_local_attestation(any_system, message=b"attest me")
    assert outcome.authenticated
    assert outcome.message_received == b"attest me"


def test_local_attestation_detects_impostor_sender(any_system):
    """A different sender binary yields a different recorded measurement."""
    outcome = run_local_attestation(any_system, message=b"x" * 31)
    # Same flow, but the expected constant belongs to another program.
    other = run_local_attestation(any_system, message=b"y" * 32)
    assert outcome.recorded_sender_measurement != other.recorded_sender_measurement


def test_remote_attestation_fig7(any_system):
    outcome = run_remote_attestation(any_system)
    assert outcome.verification.ok, outcome.verification.reason
    assert outcome.channel_ok
    assert set(outcome.phase_cycles) == {
        "signing_setup",
        "client_request",
        "signing_sign",
        "client_report",
    }


def test_one_signer_attests_many_clients(any_system):
    """The signing enclave's phase loop serves session after session."""
    first = run_remote_attestation(any_system)
    second = run_remote_attestation(any_system, reuse_signing=first)
    third = run_remote_attestation(any_system, reuse_signing=first)
    for outcome in (first, second, third):
        assert outcome.verification.ok and outcome.channel_ok
    assert second.signing_eid == first.signing_eid == third.signing_eid
    assert len({first.client_eid, second.client_eid, third.client_eid}) == 3
    assert len({first.session_key, second.session_key, third.session_key}) == 3


def test_remote_attestation_rejects_stale_nonce(any_system):
    outcome = run_remote_attestation(any_system)
    from repro.sm.attestation import verify_attestation

    result = verify_attestation(
        outcome.report, any_system.root_public_key, expected_nonce=b"\x00" * 32
    )
    assert not result.ok


def test_prediction_used_by_verifier_matches(any_system):
    from repro.sdk.attestation_client import build_attestation_client_image

    page = any_system.kernel.alloc_buffer(1)
    image = build_attestation_client_image(page)
    predicted = predict_measurement(
        image, any_system.boot.sm_measurement, any_system.platform.name
    )
    loaded = any_system.kernel.load_enclave(image)
    assert any_system.sm.enclave_measurement(loaded.eid) == predicted
