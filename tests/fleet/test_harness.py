"""The fleet harness end to end: serve, verify, stay deterministic."""

import pytest

from repro.fleet import FleetSpec, run_fleet
from repro.fleet.bench import run_fleet_bench


@pytest.fixture(scope="module")
def small_fleet():
    """2 machines × 4 clients, full workload mix, inline backend."""
    return run_fleet(
        FleetSpec(n_machines=2, clients=4, platform="sanctum",
                  fleet_seed=11, channel_updates=2, local_attest_every=2,
                  mode="inline")
    )


def test_every_attestation_verifies_cross_machine(small_fleet):
    assert small_fleet.attestations == 4
    assert small_fleet.all_verified, small_fleet.failures
    assert small_fleet.p99_attest_ms >= small_fleet.p50_attest_ms > 0


def test_fleet_machines_carry_distinct_identities(small_fleet):
    assert small_fleet.distinct_identities
    roots = {m["root_public"] for m in small_fleet.machines}
    assert len(roots) == 2


def test_negative_probes_rejected(small_fleet):
    assert small_fleet.replay_rejected is True
    assert small_fleet.splice_rejected is True


def test_chain_verification_amortized(small_fleet):
    """4 requests from 2 machines: 2 chain checks for the requests
    (plus the replay probe's failed attempt), the rest cache hits."""
    assert small_fleet.chain_verifications == 3
    assert small_fleet.chain_cache_hits >= 2


def test_workload_mix_executed(small_fleet):
    jobs = sum(m["jobs_served"] for m in small_fleet.machines)
    assert jobs == 4
    assert all(m["global_steps"] > 0 for m in small_fleet.machines)


def test_same_seed_same_transcript():
    """Per-machine determinism: same machine seed → bit-identical
    transcript, independent of host timing."""
    spec = FleetSpec(n_machines=1, clients=2, platform="sanctum",
                     fleet_seed=33, channel_updates=1, local_attest_every=2,
                     mode="inline")
    first = run_fleet(spec)
    second = run_fleet(spec)
    assert first.transcripts == second.transcripts
    assert first.transcripts[0] != ""


def test_different_fleet_seed_different_transcript():
    base = FleetSpec(n_machines=1, clients=1, platform="sanctum",
                     fleet_seed=33, channel_updates=0, local_attest_every=0,
                     mode="inline")
    other = run_fleet(base)
    shifted = run_fleet(
        FleetSpec(n_machines=1, clients=1, platform="sanctum",
                  fleet_seed=34, channel_updates=0, local_attest_every=0,
                  mode="inline")
    )
    assert other.transcripts[0] != shifted.transcripts[0]


def test_process_backend_matches_inline_transcripts():
    """The multiprocessing backend changes the host schedule, never the
    simulated machines: transcripts are identical across backends."""
    kwargs = dict(n_machines=2, clients=2, platform="keystone",
                  fleet_seed=5, channel_updates=1, local_attest_every=0)
    inline = run_fleet(FleetSpec(mode="inline", **kwargs))
    process = run_fleet(FleetSpec(mode="process", **kwargs))
    assert inline.all_verified and process.all_verified
    assert inline.transcripts == process.transcripts


def test_fleet_bench_shape(tmp_path):
    out = tmp_path / "BENCH_fleet.json"
    result = run_fleet_bench(
        machine_counts=(1, 2), clients=2, platforms=("sanctum",),
        fleet_seed=3, channel_updates=0, local_attest_every=0,
        mode="inline", out_path=str(out),
    )
    assert out.exists()
    data = result["platforms"]["sanctum"]
    assert [e["machines"] for e in data["counts"]] == [1, 2]
    assert all(e["all_verified"] for e in data["counts"])
    assert all(e["distinct_identities"] for e in data["counts"])
    assert data["counts"][0]["replay_rejected"] is None  # single machine
    assert data["counts"][1]["replay_rejected"] is True
    assert data["scaling_1_to_max"] > 0
