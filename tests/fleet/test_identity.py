"""Per-machine identity threading through bring-up (the fleet-blocking bug).

Every ``Machine`` used to seed its TRNG with the same default, so all
"fleet" members derived identical manufacturer roots, device keys, and
SM certificates.  These tests pin both sides of the fix: equal seeds
still mean equal keys (documented determinism — replayable
experiments), and fleet-derived identities mean pairwise-distinct
device certificates and attestation keys.
"""

import pytest

from repro.errors import BootError
from repro.fleet.identity import derive_identities
from repro.hw.machine import MachineConfig
from repro.system import (
    _validate_sm_region_record,
    build_keystone_system,
    build_sanctum_system,
    build_system,
)

SMALL = dict(n_cores=2, dram_size=32 * 1024 * 1024, llc_sets=256)


def test_default_builds_share_root_keys():
    """Documented determinism: same (default) seed, same identity."""
    a = build_sanctum_system(config=MachineConfig(**SMALL))
    b = build_sanctum_system(config=MachineConfig(**SMALL))
    assert a.root_public_key == b.root_public_key
    assert a.boot.sm_public_key == b.boot.sm_public_key
    assert a.boot.device_certificate == b.boot.device_certificate
    assert a.trng_seed == b.trng_seed == MachineConfig.trng_seed


@pytest.mark.parametrize("builder", [build_sanctum_system, build_keystone_system])
def test_trng_seed_overrides_identity(builder):
    base = builder(config=MachineConfig(**SMALL))
    other = builder(config=MachineConfig(**SMALL), trng_seed=7)
    assert other.trng_seed == 7
    assert other.machine.config.trng_seed == 7
    assert other.root_public_key != base.root_public_key
    assert other.boot.sm_public_key != base.boot.sm_public_key


def test_device_id_diversifies_provisioning():
    a = build_sanctum_system(config=MachineConfig(**SMALL), device_id="dev-a")
    b = build_sanctum_system(config=MachineConfig(**SMALL), device_id="dev-b")
    assert a.device_id == "dev-a"
    assert a.root_public_key != b.root_public_key
    assert a.boot.device_certificate != b.boot.device_certificate


def test_build_system_passes_identity_through():
    system = build_system("keystone", config=MachineConfig(**SMALL),
                          trng_seed=99, device_id="m99")
    assert system.trng_seed == 99
    assert system.device_id == "m99"


def test_fleet_identities_distinct_and_deterministic():
    identities = derive_identities(2026, 8)
    assert len({i.trng_seed for i in identities}) == 8
    assert len({i.device_id for i in identities}) == 8
    assert identities == derive_identities(2026, 8)
    assert identities != derive_identities(2027, 8)
    with pytest.raises(ValueError):
        derive_identities(1, 0)


def test_fleet_built_systems_have_distinct_certificates():
    """The headline regression: fleet members are not clones."""
    systems = [
        build_sanctum_system(
            config=MachineConfig(**SMALL),
            trng_seed=ident.trng_seed,
            device_id=ident.device_id,
        )
        for ident in derive_identities(1, 3)
    ]
    device_certs = {s.boot.device_certificate.to_bytes() for s in systems}
    sm_keys = {s.boot.sm_public_key for s in systems}
    roots = {s.root_public_key for s in systems}
    assert len(device_certs) == len(sm_keys) == len(roots) == 3


# ---------------------------------------------------------------------------
# Keystone boot-time validation (no bare asserts)
# ---------------------------------------------------------------------------

class _Record:
    def __init__(self, owner, state):
        self.owner = owner
        self.state = state


def test_sm_region_validation_raises_boot_errors():
    from repro.hw.core import DOMAIN_SM
    from repro.sm.resources import ResourceState

    with pytest.raises(BootError, match="not registered"):
        _validate_sm_region_record(None)
    with pytest.raises(BootError, match="owned by domain"):
        _validate_sm_region_record(_Record("os", ResourceState.OWNED))
    with pytest.raises(BootError, match="state BLOCKED"):
        _validate_sm_region_record(_Record(DOMAIN_SM, ResourceState.BLOCKED))
    # The healthy record passes (and a healthy boot exercises it too).
    _validate_sm_region_record(_Record(DOMAIN_SM, ResourceState.OWNED))
    build_keystone_system(config=MachineConfig(**SMALL))
