"""Cross-machine attestation: trust travels only through the root key.

A verifier on machine A must accept a quote from machine B given
*only* B's manufacturer root public key, and must reject a quote
replayed against any other machine's trust anchors — the property the
whole fleet service rests on.
"""

import dataclasses

import pytest

from repro.fleet.verify import CachedChainVerifier
from repro.hw.machine import MachineConfig
from repro.sdk.protocol import run_remote_attestation
from repro.sm.attestation import verify_attestation
from repro.system import build_sanctum_system

SMALL = dict(n_cores=2, dram_size=32 * 1024 * 1024, llc_sets=256)


@pytest.fixture(scope="module")
def two_machines():
    a = build_sanctum_system(config=MachineConfig(**SMALL),
                             trng_seed=101, device_id="machine-a")
    b = build_sanctum_system(config=MachineConfig(**SMALL),
                             trng_seed=202, device_id="machine-b")
    outcome = run_remote_attestation(b, verify=False)
    return a, b, outcome


def test_verifier_accepts_foreign_quote_via_root_key(two_machines):
    """Machine A's verifier holds only B's root key — and that suffices."""
    _, b, outcome = two_machines
    result = verify_attestation(
        outcome.report,
        b.root_public_key,
        expected_nonce=outcome.report.nonce,
        expected_enclave_measurement=outcome.expected_enclave_measurement,
        expected_sm_measurement=b.boot.sm_measurement,
    )
    assert result.ok, result.reason


def test_quote_rejected_against_other_machines_root(two_machines):
    a, _, outcome = two_machines
    result = verify_attestation(
        outcome.report, a.root_public_key, expected_nonce=outcome.report.nonce
    )
    assert not result.ok and "chain" in result.reason


def test_quote_rejected_with_spliced_foreign_chain(two_machines):
    """B's signature under A's (genuine) chain: the chain verifies, the
    attestation signature does not — the quote cannot be re-homed."""
    a, _, outcome = two_machines
    spliced = dataclasses.replace(
        outcome.report,
        device_certificate=a.boot.device_certificate,
        sm_certificate=a.boot.sm_certificate,
    )
    result = verify_attestation(
        spliced, a.root_public_key, expected_nonce=outcome.report.nonce
    )
    assert not result.ok and "signature" in result.reason


def test_cached_verifier_matches_uncached_verdicts(two_machines):
    """The chain cache is an optimization, not a semantic change."""
    a, b, outcome = two_machines
    verifier = CachedChainVerifier()

    ok = verifier.verify(
        outcome.report, b.root_public_key, expected_nonce=outcome.report.nonce
    )
    assert ok.ok and verifier.chain_verifications == 1

    # Second verification of the same machine's chain: cache hit, and
    # the per-request checks still run — a wrong nonce is still caught.
    replay = verifier.verify(
        outcome.report, b.root_public_key, expected_nonce=b"\x00" * 32
    )
    assert not replay.ok and "nonce" in replay.reason
    assert verifier.chain_cache_hits == 1
    assert verifier.chain_verifications == 1

    # A tampered signature is caught on the cached path too.
    tampered = dataclasses.replace(
        outcome.report,
        signature=bytes([outcome.report.signature[0] ^ 1])
        + outcome.report.signature[1:],
    )
    bad = verifier.verify(
        tampered, b.root_public_key, expected_nonce=outcome.report.nonce
    )
    assert not bad.ok and "signature" in bad.reason

    # The wrong root key never hits the cache of the right one.
    foreign = verifier.verify(
        outcome.report, a.root_public_key, expected_nonce=outcome.report.nonce
    )
    assert not foreign.ok and "chain" in foreign.reason
