"""Cross-process trace merge and audit shipping in the fleet harness."""

from __future__ import annotations

import pytest

from repro.fleet.harness import FleetSpec, run_fleet
from repro.telemetry.export import validate_chrome_trace


def small_spec(**overrides) -> FleetSpec:
    defaults = dict(
        n_machines=2,
        clients=4,
        channel_updates=1,
        local_attest_every=3,
        mode="inline",
        telemetry=True,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


@pytest.fixture(scope="module")
def traced_fleet():
    return run_fleet(small_spec())


def test_traced_fleet_still_verifies(traced_fleet):
    assert traced_fleet.all_verified, traced_fleet.failures
    assert traced_fleet.audit_verified
    assert traced_fleet.attestations == 4


def test_merged_trace_covers_every_client_and_machine(traced_fleet):
    spans = traced_fleet.spans
    assert spans, "telemetry run produced no spans"
    assert {s["trace_id"] for s in spans} == {
        f"client-{i:04d}" for i in range(4)
    }
    assert {s["pid"] for s in spans} == {1, 2}


def test_every_job_span_nests_under_its_trace_id(traced_fleet):
    spans = traced_fleet.spans
    roots = [s for s in spans if s["parent_id"] is None]
    # Exactly one root per client job, and it is the worker's root span.
    assert sorted(s["trace_id"] for s in roots) == [
        f"client-{i:04d}" for i in range(4)
    ]
    assert {s["name"] for s in roots} == {"fleet.serve_client"}
    by_id = {(s["pid"], s["span_id"]): s for s in spans}
    for span in spans:
        if span["parent_id"] is None:
            continue
        parent = by_id[(span["pid"], span["parent_id"])]
        assert parent["trace_id"] == span["trace_id"], (
            f"{span['name']} carries {span['trace_id']} but its parent "
            f"{parent['name']} carries {parent['trace_id']}"
        )


def test_sm_pipeline_spans_present_in_merged_trace(traced_fleet):
    categories = {s["category"] for s in traced_fleet.spans}
    assert "fleet" in categories
    assert "sm.api" in categories  # SM dispatches nested under job spans
    assert "sm.phase" in categories  # per-phase executor spans
    phases = {
        s["name"].rsplit(".", 1)[1]
        for s in traced_fleet.spans
        if s["category"] == "sm.phase"
    }
    assert {"authorize", "validate", "commit"} <= phases


def test_trace_and_audit_bit_identical_across_runs(traced_fleet):
    again = run_fleet(small_spec())
    assert again.trace_fingerprint() == traced_fleet.trace_fingerprint()
    assert again.audit_heads == traced_fleet.audit_heads
    assert again.transcripts == traced_fleet.transcripts


def test_chrome_export_is_valid_and_fleet_shaped(traced_fleet):
    doc = traced_fleet.chrome_trace()
    assert validate_chrome_trace(doc) == []
    process_names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert {"machine-0", "machine-1"} <= process_names


def test_fleet_api_latencies_merged_across_machines(traced_fleet):
    summaries = traced_fleet.api_latency_summaries
    assert "create_enclave" in summaries
    # 4 clients x (1 client enclave) + 1 signing enclave per machine,
    # + 2 enclaves per local-attestation job (clients 0 and 3).
    assert summaries["create_enclave"]["count"] >= 6
    for summary in summaries.values():
        assert summary["count"] >= 1
        assert summary["max_us"] >= summary["p50_us"] >= 0


def test_audit_heads_shipped_and_recomputed(traced_fleet):
    assert set(traced_fleet.audit_heads) == {0, 1}
    # Distinct machines have distinct identities, hence distinct chains.
    assert traced_fleet.audit_heads[0] != traced_fleet.audit_heads[1]
    as_json = traced_fleet.to_json()
    assert as_json["audit_verified"] is True
    assert as_json["trace_fingerprint"] == traced_fleet.trace_fingerprint()


def test_telemetry_off_keeps_result_shape_and_transcripts(traced_fleet):
    off = run_fleet(small_spec(telemetry=False))
    assert off.all_verified
    assert off.spans == []
    assert off.api_latency_summaries == {}
    # The audit chain is always on and observational-only: heads and
    # transcripts are identical with and without tracing.
    assert off.audit_heads == traced_fleet.audit_heads
    assert off.transcripts == traced_fleet.transcripts
    assert off.to_json()["trace_fingerprint"] is None
