"""Preemptive scheduling (AEX exercise) and demand paging."""

import pytest

from repro import image_from_assembly
from repro.kernel.paging_service import DemandPager
from repro.kernel.scheduler import RoundRobinScheduler
from repro.sdk.runtime import exit_sequence, with_runtime
from repro.sm.invariants import check_all


def _counter_image(out_addr, iterations):
    return image_from_assembly(
        with_runtime(
            f"""
main:
    li   t0, 0
    li   t1, {iterations}
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    sw   t1, {out_addr}(zero)
{exit_sequence()}"""
        ),
        entry_symbol="_start",
    )


def test_scheduler_runs_one_task_to_completion(any_system):
    kernel = any_system.kernel
    out = kernel.alloc_buffer(1)
    loaded = kernel.load_enclave(_counter_image(out, 20_000))
    scheduler = RoundRobinScheduler(kernel, slice_cycles=4000)
    scheduler.add(loaded.eid, loaded.tids[0])
    trace = scheduler.run()
    assert trace.voluntary_exits == 1
    assert trace.aex_events >= 1, "the slice must have preempted at least once"
    assert kernel.machine.memory.read_u32(out) == 20_000


def test_scheduler_interleaves_two_tasks(any_system):
    kernel = any_system.kernel
    outs = [kernel.alloc_buffer(1), kernel.alloc_buffer(1)]
    tasks = [kernel.load_enclave(_counter_image(out, 15_000)) for out in outs]
    scheduler = RoundRobinScheduler(kernel, slice_cycles=3000)
    for task in tasks:
        scheduler.add(task.eid, task.tids[0])
    trace = scheduler.run()
    assert trace.voluntary_exits == 2
    for task in scheduler.tasks:
        assert task.entries >= 2, "both tasks were preempted and resumed"
    for out in outs:
        assert kernel.machine.memory.read_u32(out) == 15_000
    check_all(any_system.sm)


def test_scheduler_respects_slice_budget(any_system):
    kernel = any_system.kernel
    out = kernel.alloc_buffer(1)
    loaded = kernel.load_enclave(_counter_image(out, 1_000_000))
    scheduler = RoundRobinScheduler(kernel, slice_cycles=2000)
    scheduler.add(loaded.eid, loaded.tids[0])
    trace = scheduler.run(max_slices=5)
    assert trace.time_slices == 5
    assert not scheduler.tasks[0].finished


def test_scheduler_validates_slice():
    with pytest.raises(ValueError):
        RoundRobinScheduler(None, slice_cycles=0)


# ---------------------------------------------------------------------------
# Demand paging of shared buffers
# ---------------------------------------------------------------------------

def _walker_image(buffer, n_pages):
    """An enclave that touches every page of a shared window in order."""
    body = "\n".join(
        f"    lw   t2, {buffer + i * 4096}(zero)" for i in range(n_pages)
    )
    return image_from_assembly(
        with_runtime(f"main:\n{body}\n{exit_sequence()}"),
        entry_symbol="_start",
    )


def test_demand_paging_services_every_fault(any_system):
    kernel = any_system.kernel
    n_pages = 4
    buffer = kernel.alloc_buffer(n_pages)
    loaded = kernel.load_enclave(_walker_image(buffer, n_pages))
    pager = DemandPager(kernel, buffer, n_pages)
    trace = pager.run_with_paging(loaded.eid, loaded.tids[0])
    assert trace.finished
    assert trace.faults_serviced == n_pages
    assert trace.fault_addresses == [buffer + i * 4096 for i in range(n_pages)], (
        "shared-memory faults are visible to the OS, in access order"
    )
    assert trace.reentries == n_pages


def test_demand_paging_no_refault_on_resident_pages(any_system):
    kernel = any_system.kernel
    buffer = kernel.alloc_buffer(2)
    # Touch page 0 twice, page 1 once: only two faults.
    body = (
        f"    lw t2, {buffer}(zero)\n"
        f"    lw t2, {buffer + 8}(zero)\n"
        f"    lw t2, {buffer + 4096}(zero)\n"
    )
    image = image_from_assembly(
        with_runtime(f"main:\n{body}\n{exit_sequence()}"), entry_symbol="_start"
    )
    loaded = kernel.load_enclave(image)
    pager = DemandPager(kernel, buffer, 2)
    trace = pager.run_with_paging(loaded.eid, loaded.tids[0])
    assert trace.faults_serviced == 2
