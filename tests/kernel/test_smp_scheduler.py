"""SMP scheduling: enclaves preempted and resumed across many cores."""

import pytest

from repro import build_sanctum_system, build_keystone_system, image_from_assembly
from repro.hw.machine import MachineConfig
from repro.kernel.scheduler import SmpScheduler
from repro.sdk.runtime import exit_sequence, with_runtime
from repro.sm.invariants import check_all


def _counter_image(out_addr, iterations):
    return image_from_assembly(
        with_runtime(
            f"""
main:
    li   t0, 0
    li   t1, {iterations}
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    sw   t1, {out_addr}(zero)
{exit_sequence()}"""
        ),
        entry_symbol="_start",
    )


@pytest.fixture
def quad_core():
    return build_sanctum_system(
        config=MachineConfig(n_cores=4, dram_size=32 * 1024 * 1024, llc_sets=256),
        n_regions=8,
    )


def test_smp_runs_more_tasks_than_cores(quad_core):
    kernel = quad_core.kernel
    outs = []
    scheduler = SmpScheduler(kernel, slice_cycles=3000)
    for i in range(6):  # 6 tasks, 4 cores
        out = kernel.alloc_buffer(1)
        iterations = 8000 + 1000 * i
        outs.append((out, iterations))
        loaded = kernel.load_enclave(_counter_image(out, iterations))
        scheduler.add(loaded.eid, loaded.tids[0])
    trace = scheduler.run()
    assert trace.voluntary_exits == 6
    assert trace.aex_events > 0
    for out, iterations in outs:
        assert kernel.machine.memory.read_u32(out) == iterations
    check_all(quad_core.sm)


def test_smp_cores_host_different_enclaves_concurrently(quad_core):
    """At some instant, at least two cores run different enclave domains."""
    kernel = quad_core.kernel
    scheduler = SmpScheduler(kernel, core_ids=[0, 1], slice_cycles=5000)
    loaded = []
    for i in range(2):
        out = kernel.alloc_buffer(1)
        enclave = kernel.load_enclave(_counter_image(out, 30_000))
        loaded.append(enclave)
        scheduler.add(enclave.eid, enclave.tids[0])
    # Dispatch manually once, then inspect the cores mid-flight.
    for core_id in (0, 1):
        scheduler._dispatch(core_id, scheduler._ready.pop(0))
    domains = {kernel.machine.cores[0].domain, kernel.machine.cores[1].domain}
    assert domains == {loaded[0].eid, loaded[1].eid}
    # Let them finish normally.
    trace = scheduler.run()
    assert trace.voluntary_exits == 2
    check_all(quad_core.sm)


def test_smp_on_keystone():
    system = build_keystone_system(
        config=MachineConfig(n_cores=4, dram_size=32 * 1024 * 1024, llc_sets=256)
    )
    kernel = system.kernel
    scheduler = SmpScheduler(kernel, slice_cycles=4000)
    outs = []
    for __ in range(4):
        out = kernel.alloc_buffer(1)
        outs.append(out)
        loaded = kernel.load_enclave(_counter_image(out, 10_000))
        scheduler.add(loaded.eid, loaded.tids[0])
    trace = scheduler.run()
    assert trace.voluntary_exits == 4
    for out in outs:
        assert kernel.machine.memory.read_u32(out) == 10_000
    check_all(system.sm)
