"""The enclave image format and the OS model's loading/reclaim paths."""

import pytest

from repro.hw.memory import PAGE_SIZE
from repro.hw.paging import PTE_R, PTE_W, PTE_X
from repro.kernel.loader import EnclaveImage, EnclaveSegment, image_from_assembly
from repro.kernel.os_model import OsError
from repro.sm.events import OsEventKind
from tests.conftest import trivial_enclave_image

RWX = PTE_R | PTE_W | PTE_X


# ---------------------------------------------------------------------------
# Image format
# ---------------------------------------------------------------------------

def test_segment_pages_split_and_pad():
    segment = EnclaveSegment(0x40000000, b"x" * (PAGE_SIZE + 10), RWX)
    pages = segment.pages()
    assert len(pages) == 2
    assert pages[0] == (0x40000000, b"x" * PAGE_SIZE)
    assert pages[1][1] == b"x" * 10 + bytes(PAGE_SIZE - 10)


def test_empty_segment_still_occupies_one_page():
    segment = EnclaveSegment(0x40000000, b"", RWX)
    assert len(segment.pages()) == 1


def test_segment_must_be_page_aligned():
    with pytest.raises(ValueError):
        EnclaveSegment(0x40000010, b"x", RWX)


def test_image_rejects_segment_escaping_evrange():
    with pytest.raises(ValueError):
        EnclaveImage(
            evrange_base=0x40000000,
            evrange_size=PAGE_SIZE,
            segments=(EnclaveSegment(0x40001000, b"x", RWX),),
            entry_pc=0x40000000,
            entry_sp=0,
        )


def test_required_pages_accounting():
    image = image_from_assembly("entry:\n    halt\n", stack_pages=2)
    # 1 root + 1 L0 (all within one 4MB block) + 1 code + 2 stack.
    assert image.required_pages() == 1 + len(image.l0_blocks()) + image.total_pages()
    assert image.total_pages() == 3


def test_l0_blocks_span_4mb_boundaries():
    image = EnclaveImage(
        evrange_base=0x40000000,
        evrange_size=0x800000,
        segments=(
            EnclaveSegment(0x40000000, b"a", RWX),
            EnclaveSegment(0x40400000, b"b", RWX),  # next 4 MB block
        ),
        entry_pc=0x40000000,
        entry_sp=0,
    )
    assert len(image.l0_blocks()) == 2


def test_fault_symbol_configures_handler():
    image = image_from_assembly(
        "entry:\n    halt\nhandler:\n    halt\n", fault_symbol="handler"
    )
    assert image.fault_pc != 0 and image.fault_sp != 0


# ---------------------------------------------------------------------------
# OS loading / reclaim
# ---------------------------------------------------------------------------

def test_load_enclave_end_to_end(any_system):
    buffer = any_system.kernel.alloc_buffer(1)
    loaded = any_system.kernel.load_enclave(trivial_enclave_image(buffer, value=5))
    events = any_system.kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert events[0].kind is OsEventKind.ENCLAVE_EXIT
    assert any_system.machine.memory.read_u32(buffer) == 5


def test_destroy_and_reload_reuses_memory(any_system):
    kernel = any_system.kernel
    image = trivial_enclave_image()
    first = kernel.load_enclave(image)
    base = first.region_base
    kernel.destroy_enclave(first.eid)
    second = kernel.load_enclave(image)
    assert second.region_base == base, "reclaimed memory is reused (LIFO)"


def test_many_load_destroy_cycles(any_system):
    kernel = any_system.kernel
    image = trivial_enclave_image()
    for _ in range(10):
        loaded = kernel.load_enclave(image)
        events = kernel.enter_and_run(loaded.eid, loaded.tids[0])
        assert events[0].kind is OsEventKind.ENCLAVE_EXIT
        kernel.destroy_enclave(loaded.eid)


def test_concurrent_enclaves(any_system):
    kernel = any_system.kernel
    outs = [kernel.alloc_buffer(1) for _ in range(3)]
    loaded = [
        kernel.load_enclave(trivial_enclave_image(out, value=i + 1))
        for i, out in enumerate(outs)
    ]
    for enclave in loaded:
        kernel.enter_and_run(enclave.eid, enclave.tids[0])
    for i, out in enumerate(outs):
        assert kernel.machine.memory.read_u32(out) == i + 1


def test_alloc_buffer_is_contiguous_and_zeroed(any_system):
    kernel = any_system.kernel
    buffer = kernel.alloc_buffer(3)
    assert kernel.machine.memory.read(buffer, 3 * PAGE_SIZE) == bytes(3 * PAGE_SIZE)
    with pytest.raises(ValueError):
        kernel.alloc_buffer(0)


def test_donation_exhaustion_raises(sanctum_system):
    kernel = sanctum_system.kernel
    # 8 regions: 1 SM + 1 kernel = 6 donatable on the small config.
    big = kernel.machine.config.dram_size  # impossible to satisfy
    with pytest.raises(OsError):
        kernel.donate_memory(0x40000, big * 2)


def test_shared_read_write(any_system):
    kernel = any_system.kernel
    buffer = kernel.alloc_buffer(1)
    kernel.write_shared(buffer, b"hello")
    assert kernel.read_shared(buffer, 5) == b"hello"
