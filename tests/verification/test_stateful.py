"""Hypothesis stateful testing: the real SM against the abstract model.

A rule-based state machine drives the *real* monitor (on a live Sanctum
system) and the abstract model with the same action stream; after every
action both must agree on accept/reject, and the real system must keep
satisfying its runtime invariants.  Hypothesis explores interleavings a
hand-written test never would, and shrinks divergences to minimal
traces.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro import build_sanctum_system
from repro.errors import ApiResult
from repro.hw.core import DOMAIN_UNTRUSTED
from repro.hw.machine import MachineConfig
from repro.sm.invariants import check_all
from repro.sm.resources import ResourceType
from repro.verification.model import (
    OS,
    AbstractSm,
    Action,
    Lifecycle,
    ModelConfig,
)

#: Two abstract enclaves and two donatable regions.
ABSTRACT_EIDS = (100, 101)


class SmVsModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.system = build_sanctum_system(
            config=MachineConfig(n_cores=2, dram_size=16 * 1024 * 1024, llc_sets=256),
            n_regions=4,
        )
        self.sm = self.system.sm
        # Two real donatable regions stand for abstract regions 0 and 1.
        self.rids = self.system.kernel._donatable_regions[:2]
        self.model = AbstractSm(ModelConfig(n_regions=2, eids=ABSTRACT_EIDS, tids=()))
        self.state = self.model.initial_state()
        #: abstract eid -> real eid.
        self.eid_map: dict[int, int] = {}

    # ------------------------------------------------------------------

    def _apply_both(self, action: Action, real_call):
        expected = self.model.apply(self.state, action)
        result = real_call()
        if expected is None:
            assert result is not ApiResult.OK, (
                f"real SM accepted what the model forbids: {action} -> {result.name}"
            )
        else:
            assert result is ApiResult.OK, (
                f"real SM refused what the model allows: {action} -> {result.name}"
            )
            self.state = expected

    def _real_domain(self, abstract: int) -> int:
        if abstract == OS:
            return DOMAIN_UNTRUSTED
        return self.eid_map.get(abstract, 0xDEAD000 + abstract)

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    @rule(eid=st.sampled_from(ABSTRACT_EIDS))
    def create_enclave(self, eid):
        def call():
            if eid in self.eid_map:
                # Real ids are fresh per enclave; re-creating the *same*
                # abstract enclave maps to re-using its real id.
                return self.sm.create_enclave(
                    DOMAIN_UNTRUSTED, self.eid_map[eid], 0x40000000, 4096, 1
                )
            real = self.sm.state.suggest_metadata(4096)
            result = self.sm.create_enclave(DOMAIN_UNTRUSTED, real, 0x40000000, 4096, 1)
            if result is ApiResult.OK:
                self.eid_map[eid] = real
            return result

        self._apply_both(Action("create_enclave", (eid,)), call)

    @rule(eid=st.sampled_from(ABSTRACT_EIDS))
    def delete_enclave(self, eid):
        def call():
            result = self.sm.delete_enclave(DOMAIN_UNTRUSTED, self._real_domain(eid))
            if result is ApiResult.OK:
                self.eid_map.pop(eid, None)
            return result

        self._apply_both(Action("delete_enclave", (eid,)), call)

    @rule(region=st.sampled_from([0, 1]), owner=st.sampled_from([OS] + list(ABSTRACT_EIDS)))
    def block_region(self, region, owner):
        self._apply_both(
            Action("block_region", (owner, region)),
            lambda: self.sm.block_resource(
                self._real_domain(owner), ResourceType.DRAM_REGION, self.rids[region]
            ),
        )

    @rule(region=st.sampled_from([0, 1]))
    def clean_region(self, region):
        self._apply_both(
            Action("clean_region", (region,)),
            lambda: self.sm.clean_resource(
                DOMAIN_UNTRUSTED, ResourceType.DRAM_REGION, self.rids[region]
            ),
        )

    @rule(region=st.sampled_from([0, 1]), recipient=st.sampled_from([OS] + list(ABSTRACT_EIDS)))
    def grant_region(self, region, recipient):
        self._apply_both(
            Action("grant_region", (region, recipient)),
            lambda: self.sm.grant_resource(
                DOMAIN_UNTRUSTED,
                ResourceType.DRAM_REGION,
                self.rids[region],
                self._real_domain(recipient),
            ),
        )

    @rule(region=st.sampled_from([0, 1]), caller=st.sampled_from(list(ABSTRACT_EIDS)))
    def accept_region(self, region, caller):
        self._apply_both(
            Action("accept_region", (caller, region)),
            lambda: self.sm.accept_resource(
                self._real_domain(caller), ResourceType.DRAM_REGION, self.rids[region]
            ),
        )

    @rule(eid=st.sampled_from(ABSTRACT_EIDS))
    def init_enclave(self, eid):
        # The abstract model has no loading discipline, so only attempt
        # init when the model says LOADING *and* give the real enclave a
        # root table first (the real precondition).
        expected = self.model.apply(self.state, Action("init_enclave", (eid,)))
        real_eid = self.eid_map.get(eid)
        if expected is None or real_eid is None:
            if real_eid is not None:
                # Either already initialized or never created: the real
                # SM must also refuse a bare re-init.
                if self.state.enclave(eid) is Lifecycle.INITIALIZED:
                    assert (
                        self.sm.init_enclave(DOMAIN_UNTRUSTED, real_eid)
                        is not ApiResult.OK
                    )
            return
        enclave = self.sm.state.enclave(real_eid)
        if enclave.page_table_root_ppn is None:
            record = self.sm.state.resources.owned_by(real_eid, ResourceType.DRAM_REGION)
            if not record:
                return  # cannot satisfy the real precondition; skip
            base, __ = self.system.platform.region_range(record[0].rid)
            assert (
                self.sm.allocate_page_table(DOMAIN_UNTRUSTED, real_eid, 0, 1, base)
                is ApiResult.OK
            )
        assert self.sm.init_enclave(DOMAIN_UNTRUSTED, real_eid) is ApiResult.OK
        self.state = expected

    # ------------------------------------------------------------------

    @invariant()
    def runtime_invariants_hold(self):
        check_all(self.sm)


TestSmVsModel = SmVsModel.TestCase
TestSmVsModel.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
