"""The abstract model, its properties, and the bounded checker."""

import dataclasses

import pytest

from repro.verification.checker import BoundedChecker
from repro.verification.model import (
    OS,
    AbstractSm,
    Action,
    Lifecycle,
    ModelConfig,
    Region,
    RState,
    TState,
)
from repro.verification.properties import (
    ALL_PROPERTIES,
    exclusive_region_ownership,
    no_stale_data_across_domains,
)


# ---------------------------------------------------------------------------
# Model transitions
# ---------------------------------------------------------------------------

def test_enclave_lifecycle_path():
    model = AbstractSm()
    state = model.initial_state()
    state = model.apply(state, Action("create_enclave", (100,)))
    assert state.enclave(100) is Lifecycle.LOADING
    assert model.apply(state, Action("create_enclave", (100,))) is None
    state = model.apply(state, Action("init_enclave", (100,)))
    assert state.enclave(100) is Lifecycle.INITIALIZED
    assert model.apply(state, Action("init_enclave", (100,))) is None


def test_region_donation_path():
    model = AbstractSm()
    state = model.initial_state()
    state = model.apply(state, Action("create_enclave", (100,)))
    state = model.apply(state, Action("block_region", (OS, 0)))
    assert model.apply(state, Action("grant_region", (0, 100))) is None, (
        "blocked regions cannot be granted before cleaning"
    )
    state = model.apply(state, Action("clean_region", (0,)))
    state = model.apply(state, Action("grant_region", (0, 100)))
    assert state.regions[0].owner == 100
    assert state.regions[0].taint == 100


def test_offer_accept_for_running_enclave():
    model = AbstractSm()
    state = model.initial_state()
    state = model.apply(state, Action("create_enclave", (100,)))
    state = model.apply(state, Action("init_enclave", (100,)))
    state = model.apply(state, Action("block_region", (OS, 0)))
    state = model.apply(state, Action("clean_region", (0,)))
    state = model.apply(state, Action("grant_region", (0, 100)))
    assert state.regions[0].state is RState.OFFERED
    assert model.apply(state, Action("accept_region", (101, 0))) is None
    state = model.apply(state, Action("accept_region", (100, 0)))
    assert state.regions[0].owner == 100


def test_delete_blocks_resources_and_gates_on_scheduling():
    model = AbstractSm()
    state = model.initial_state()
    for action in [
        Action("create_enclave", (100,)),
        Action("create_thread", (100, 200)),
        Action("block_region", (OS, 0)),
        Action("clean_region", (0,)),
        Action("grant_region", (0, 100)),
        Action("init_enclave", (100,)),
        Action("enter_enclave", (100, 200)),
    ]:
        state = model.apply(state, action)
        assert state is not None, action
    assert model.apply(state, Action("delete_enclave", (100,))) is None
    state = model.apply(state, Action("exit_enclave", (100, 200)))
    state = model.apply(state, Action("delete_enclave", (100,)))
    assert state.enclave(100) is None
    assert state.regions[0].state is RState.BLOCKED
    assert state.thread(200).state is TState.BLOCKED


# ---------------------------------------------------------------------------
# Properties catch crafted violations
# ---------------------------------------------------------------------------

def test_property_catches_dead_owner():
    model = AbstractSm()
    state = model.initial_state().with_region(
        0, Region(owner=100, state=RState.OWNED, taint=100)
    )
    assert exclusive_region_ownership(state) is not None


def test_property_catches_stale_taint():
    model = AbstractSm()
    state = model.initial_state()
    state = model.apply(state, Action("create_enclave", (100,)))
    bad = state.with_region(0, Region(owner=OS, state=RState.OWNED, taint=100))
    assert no_stale_data_across_domains(bad) is not None


# ---------------------------------------------------------------------------
# The bounded checker
# ---------------------------------------------------------------------------

def test_model_satisfies_properties_to_depth_7():
    outcome = BoundedChecker().run(max_depth=7)
    assert outcome.ok, f"{outcome.violation}\ntrace: {outcome.counterexample}"
    assert outcome.states_explored > 300


def test_checker_finds_injected_bug():
    """Mutation test: remove the clean-before-grant rule; checker objects."""

    class BuggySm(AbstractSm):
        def _do_grant_region(self, state, rid, recipient):
            region = state.regions[rid]
            # BUG: accepts BLOCKED regions, skipping the cleaning step.
            if region.state not in (RState.FREE, RState.BLOCKED):
                return None
            if recipient == OS:
                return state.with_region(rid, Region(OS, RState.OWNED, region.taint))
            if state.enclave(recipient) is None:
                return None
            return state.with_region(
                rid, Region(recipient, RState.OWNED, region.taint)
            )

    outcome = BoundedChecker(BuggySm()).run(max_depth=6)
    assert not outcome.ok
    assert "taint" in outcome.violation or "stale" in outcome.violation
    assert outcome.counterexample, "a counterexample trace is reported"


def test_checker_finds_mailbox_bug():
    """Mutation test: drop the accept-gating on mail delivery."""
    from repro.verification.model import Mailbox, MState

    class BuggySm(AbstractSm):
        def _do_send_mail(self, state, sender, recipient):
            if sender != OS and state.enclave(sender) is not Lifecycle.INITIALIZED:
                return None
            box = state.mailbox(recipient)
            if box is None or box.state is MState.FULL:
                return None
            # BUG: delivers without checking box.expected == sender.
            return state.with_mailbox(
                recipient,
                Mailbox(state=MState.FULL, expected=box.expected, filled_by=sender),
            )

    outcome = BoundedChecker(BuggySm()).run(max_depth=5)
    assert not outcome.ok
    assert "mailbox" in outcome.violation


def test_checker_finds_lifecycle_bug():
    """Mutation test: allow scheduling threads of LOADING enclaves."""

    class BuggySm(AbstractSm):
        def _do_enter_enclave(self, state, eid, tid):
            thread = state.thread(tid)
            if state.enclave(eid) is None:  # BUG: no INITIALIZED check
                return None
            if thread is None or thread.owner != eid or thread.state is not TState.ASSIGNED:
                return None
            return state.with_thread(
                tid, dataclasses.replace(thread, state=TState.SCHEDULED)
            )

    outcome = BoundedChecker(BuggySm()).run(max_depth=5)
    assert not outcome.ok
    assert "scheduled" in outcome.violation


# ---------------------------------------------------------------------------
# Differential: the abstract model agrees with the real SM
# ---------------------------------------------------------------------------

def test_model_agrees_with_real_sm_on_region_traces(sanctum_system):
    """Replay model-legal region action sequences against the real API."""
    from repro.errors import ApiResult
    from repro.sm.resources import ResourceType

    sm = sanctum_system.sm
    kernel = sanctum_system.kernel
    # Map abstract eid 100 to a real LOADING enclave; region 0 to a real
    # donatable region.
    eid = sm.state.suggest_metadata(4096)
    assert sm.create_enclave(OS, eid, 0x40000000, 4096, 1) is ApiResult.OK
    rid = kernel._donatable_regions[0]
    mapping = {100: eid}

    model = AbstractSm(ModelConfig(n_regions=1, eids=(100,), tids=()))
    state = model.initial_state()
    state = state.with_enclave(100, Lifecycle.LOADING)

    trace = [
        Action("block_region", (OS, 0)),
        Action("clean_region", (0,)),
        Action("grant_region", (0, 100)),
        Action("block_region", (100, 0)),
        Action("clean_region", (0,)),
        Action("grant_region", (0, OS)),
        Action("block_region", (OS, 0)),
        Action("grant_region", (0, 100)),  # illegal: blocked, not cleaned
        Action("clean_region", (0,)),
    ]
    for action in trace:
        expected = model.apply(state, action)
        name, args = action.name, action.args
        if name == "block_region":
            caller = mapping.get(args[0], args[0])
            real = sm.block_resource(caller, ResourceType.DRAM_REGION, rid)
        elif name == "clean_region":
            real = sm.clean_resource(OS, ResourceType.DRAM_REGION, rid)
        else:
            recipient = mapping.get(args[1], args[1])
            real = sm.grant_resource(OS, ResourceType.DRAM_REGION, rid, recipient)
        if expected is None:
            assert real is not ApiResult.OK, f"real SM accepted illegal {action}"
        else:
            assert real is ApiResult.OK, f"real SM refused legal {action}: {real.name}"
            state = expected
