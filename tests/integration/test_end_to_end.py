"""Whole-system integration: boot → load → run → attest → destroy."""

import pytest

from repro import build_keystone_system, build_sanctum_system, image_from_assembly
from repro.analysis import loc_report
from repro.kernel.scheduler import RoundRobinScheduler
from repro.sdk.local_attestation import run_local_attestation
from repro.sdk.protocol import run_remote_attestation
from repro.sdk.runtime import exit_sequence, with_runtime
from repro.sm.events import OsEventKind
from repro.sm.invariants import check_all
from tests.conftest import small_config, trivial_enclave_image


def test_full_lifecycle_on_both_platforms(any_system):
    kernel = any_system.kernel
    out = kernel.alloc_buffer(1)
    loaded = kernel.load_enclave(trivial_enclave_image(out, value=123))
    events = kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert events[0].kind is OsEventKind.ENCLAVE_EXIT
    assert kernel.machine.memory.read_u32(out) == 123
    check_all(any_system.sm)
    kernel.destroy_enclave(loaded.eid)
    check_all(any_system.sm)


def test_enclave_computation_with_secret_data(any_system):
    """An enclave computes over private data; only the result escapes."""
    kernel = any_system.kernel
    out = kernel.alloc_buffer(1)
    source = f"""
entry:
    li   t0, secret_table
    li   t1, 0
    li   t2, 0
sum_loop:
    li   a4, 4
    mul  a5, t1, a4
    add  a5, a5, t0
    lw   a4, 0(a5)
    add  t2, t2, a4
    addi t1, t1, 1
    li   a4, 8
    bltu t1, a4, sum_loop
    sw   t2, {out}(zero)
{exit_sequence()}
    .align 8
secret_table:
    .word 10, 20, 30, 40, 50, 60, 70, 80
"""
    loaded = kernel.load_enclave(image_from_assembly(source))
    kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert kernel.machine.memory.read_u32(out) == 360
    # And the table itself is unreadable by the OS.
    from repro.kernel.adversary import MaliciousOs

    probe = MaliciousOs(kernel).probe_enclave_memory(loaded, offset=0)
    assert not probe.succeeded


def test_remote_attestation_then_scheduling_then_teardown(any_system):
    outcome = run_remote_attestation(any_system)
    assert outcome.verification.ok and outcome.channel_ok
    check_all(any_system.sm)

    kernel = any_system.kernel
    out = kernel.alloc_buffer(1)
    worker = image_from_assembly(
        with_runtime(
            f"""
main:
    li   t0, 0
    li   t1, 10000
loop:
    addi t0, t0, 1
    bne  t0, t1, loop
    sw   t1, {out}(zero)
{exit_sequence()}"""
        ),
        entry_symbol="_start",
    )
    loaded = kernel.load_enclave(worker)
    scheduler = RoundRobinScheduler(kernel, slice_cycles=3000)
    scheduler.add(loaded.eid, loaded.tids[0])
    trace = scheduler.run()
    assert trace.voluntary_exits == 1
    assert kernel.machine.memory.read_u32(out) == 10000
    check_all(any_system.sm)
    kernel.destroy_enclave(loaded.eid)
    kernel.destroy_enclave(outcome.client_eid)
    kernel.destroy_enclave(outcome.signing_eid)
    check_all(any_system.sm)


def test_remote_then_local_attestation(any_system):
    # Remote first: the signing enclave's measurement must be programmed
    # before any enclave exists (the boot-time hard-coding rule).
    remote = run_remote_attestation(any_system)
    assert remote.verification.ok
    local = run_local_attestation(any_system)
    assert local.authenticated
    check_all(any_system.sm)


def test_reports_from_different_devices_not_interchangeable():
    """A report from one device never verifies under another's root.

    The two systems get different TRNG seeds — same-seed systems are
    bit-identical clone devices by construction (determinism), which is
    exactly what distinct physical devices are not.
    """
    from repro.hw.machine import MachineConfig

    a = build_sanctum_system(config=MachineConfig(n_cores=2, dram_size=32 * 1024 * 1024, llc_sets=256, trng_seed=1))
    b = build_keystone_system(config=MachineConfig(n_cores=2, dram_size=32 * 1024 * 1024, llc_sets=256, trng_seed=2))
    outcome = run_remote_attestation(a)
    from repro.sm.attestation import verify_attestation

    crossed = verify_attestation(
        outcome.report, b.root_public_key, expected_nonce=outcome.report.nonce
    )
    assert not crossed.ok


def test_many_enclaves_simultaneously(sanctum_system):
    kernel = sanctum_system.kernel
    outs, loaded = [], []
    for i in range(4):
        out = kernel.alloc_buffer(1)
        outs.append(out)
        loaded.append(kernel.load_enclave(trivial_enclave_image(out, value=100 + i)))
    measurements = {sanctum_system.sm.enclave_measurement(l.eid) for l in loaded}
    assert len(measurements) == 4, "distinct binaries, distinct measurements"
    for enclave in loaded:
        kernel.enter_and_run(enclave.eid, enclave.tids[0])
    for i, out in enumerate(outs):
        assert kernel.machine.memory.read_u32(out) == 100 + i
    check_all(sanctum_system.sm)


def test_loc_report_shape():
    """The §VII-A claim: the platform-independent core is a fraction of
    the system, and the whole monitor is small."""
    report = loc_report()
    assert report.sm_core > 0
    assert report.sm_total > report.sm_core
    assert 0.1 < report.core_fraction() < 0.9
    assert report.total > report.sm_total, (
        "the repository is much larger than the trusted monitor itself"
    )
