"""Every shipped example must run clean — examples are part of the API."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    assert set(ALL_EXAMPLES) == {
        "quickstart.py",
        "remote_attestation.py",
        "local_attestation.py",
        "sidechannel_defense.py",
        "multitasking.py",
        "sealed_counter.py",
        "tcb_recovery.py",
    }


@pytest.mark.parametrize("example", ALL_EXAMPLES)
def test_example_runs_clean(example):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{example} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{example} printed nothing"
