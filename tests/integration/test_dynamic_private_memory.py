"""Dynamic *private* memory: accept a region, map it into evrange, use it.

The full SGX2-style loop the paper's dynamic-resources story implies:
the enclave accepts memory (Fig. 2), maps pages of it into its own
virtual range at runtime, computes on them privately (the dual walk now
translates those addresses through the enclave's tables), unmaps, and
returns the memory — while the OS stays locked out throughout.
"""

import pytest

from repro import image_from_assembly
from repro.errors import ApiResult
from repro.hw.core import DOMAIN_UNTRUSTED
from repro.hw.memory import PAGE_SHIFT, PAGE_SIZE
from repro.hw.paging import PTE_R, PTE_W
from repro.sm.api import EnclaveEcall
from repro.sm.events import OsEventKind
from repro.sm.invariants import check_all
from repro.sm.resources import ResourceState, ResourceType

OS = DOMAIN_UNTRUSTED

#: The enclave maps the new page at this evrange-virtual address.
DYN_VADDR = 0x40080000


def _dynamic_mapper_source(shared: int) -> str:
    accept = int(EnclaveEcall.ACCEPT_RESOURCE)
    map_page = int(EnclaveEcall.MAP_PAGE)
    unmap = int(EnclaveEcall.UNMAP_PAGE)
    block = int(EnclaveEcall.BLOCK_RESOURCE)
    exit_call = int(EnclaveEcall.EXIT_ENCLAVE)
    return f"""
_start:
    lw   a2, {shared}(zero)            # rid offered by the OS
    li   a0, {accept}
    li   a1, 1
    ecall
    bne  a0, zero, fail

    lw   a2, {shared + 0x8}(zero)      # paddr of a page in the region
    li   a0, {map_page}                # map it at DYN_VADDR, RW
    li   a1, {DYN_VADDR}
    li   a3, {PTE_R | PTE_W}
    ecall
    bne  a0, zero, fail

    li   t0, {DYN_VADDR}               # compute on the private page
    li   t1, 0xBEEF
    sw   t1, 0(t0)
    lw   t2, 0(t0)
    sw   t2, {shared + 0xC}(zero)      # prove the round trip

    li   a0, {unmap}                   # tear down before returning it
    li   a1, {DYN_VADDR}
    ecall
    bne  a0, zero, fail
    lw   a2, {shared}(zero)
    li   a0, {block}
    li   a1, 1
    ecall
    bne  a0, zero, fail

    li   t0, 1
    sw   t0, {shared + 0x4}(zero)
    li   a0, {exit_call}
    ecall
fail:
    addi t0, a0, 0x100
    sw   t0, {shared + 0x4}(zero)
    li   a0, {exit_call}
    ecall
"""


def _offer_region(system, eid):
    kernel, sm = system.kernel, system.sm
    rid = kernel._donatable_regions.pop(0)
    assert sm.block_resource(OS, ResourceType.DRAM_REGION, rid) is ApiResult.OK
    assert sm.clean_resource(OS, ResourceType.DRAM_REGION, rid) is ApiResult.OK
    assert sm.grant_resource(OS, ResourceType.DRAM_REGION, rid, eid) is ApiResult.OK
    return rid


def test_map_use_unmap_return_cycle(sanctum_system):
    system = sanctum_system
    kernel, sm = system.kernel, system.sm
    shared = kernel.alloc_buffer(1)
    # evrange is sized so the default L0 table covers DYN_VADDR.
    image = image_from_assembly(
        _dynamic_mapper_source(shared),
        evrange_base=0x40000000,
        evrange_size=0x100000,
        entry_symbol="_start",
    )
    loaded = kernel.load_enclave(image)
    rid = _offer_region(system, loaded.eid)
    base, __ = system.platform.region_range(rid)
    kernel.write_shared(shared, rid.to_bytes(4, "little"))
    kernel.write_shared(shared + 0x8, base.to_bytes(4, "little"))

    events = kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert events[0].kind is OsEventKind.ENCLAVE_EXIT
    assert kernel.machine.memory.read_u32(shared + 4) == 1, hex(
        kernel.machine.memory.read_u32(shared + 4)
    )
    assert kernel.machine.memory.read_u32(shared + 0xC) == 0xBEEF

    # Region came back blocked; OS reclaims it clean.
    record = sm.state.resources.get(ResourceType.DRAM_REGION, rid)
    assert record.state is ResourceState.BLOCKED
    assert sm.clean_resource(OS, ResourceType.DRAM_REGION, rid) is ApiResult.OK
    assert kernel.machine.memory.read_u32(base) == 0, "secret scrubbed"
    assert sm.grant_resource(OS, ResourceType.DRAM_REGION, rid, OS) is ApiResult.OK
    kernel._donatable_regions.insert(0, rid)
    check_all(sm)


def _roomy_image():
    """A trivial enclave with slack evrange for runtime mappings."""
    return image_from_assembly(
        "entry:\n    li a0, 0\n    ecall\n",
        evrange_base=0x40000000,
        evrange_size=0x100000,
    )


def test_map_page_authorization(sanctum_system):
    """MAP_PAGE host-path checks: ownership, aliasing, table coverage."""
    system = sanctum_system
    kernel, sm = system.kernel, system.sm
    loaded = kernel.load_enclave(_roomy_image())
    eid = loaded.eid
    rid = _offer_region(system, eid)
    base, __ = system.platform.region_range(rid)
    assert sm.accept_resource(eid, ResourceType.DRAM_REGION, rid) is ApiResult.OK

    # OS cannot call it.
    assert sm.map_enclave_page(OS, 0x40004000, base, PTE_R) is ApiResult.PROHIBITED
    # Unowned physical page refused.
    os_frame = kernel.alloc_frame() << PAGE_SHIFT
    assert (
        sm.map_enclave_page(eid, 0x40004000, os_frame, PTE_R) is ApiResult.PROHIBITED
    )
    # Outside evrange refused.
    assert sm.map_enclave_page(eid, 0x90000000, base, PTE_R) is ApiResult.INVALID_VALUE
    # Aliasing an existing vaddr (the code page) refused.
    assert (
        sm.map_enclave_page(eid, loaded.image.evrange_base, base, PTE_R)
        is ApiResult.INVALID_STATE
    )
    # A good mapping works, and the backing page was scrubbed.
    kernel.machine.memory.write(base + 0x1000, b"stale!")
    assert (
        sm.map_enclave_page(eid, 0x40004000, base + 0x1000, PTE_R | PTE_W)
        is ApiResult.OK
    )
    assert kernel.machine.memory.read(base + 0x1000, 6) == bytes(6)
    # Double-mapping the same physical page refused.
    assert (
        sm.map_enclave_page(eid, 0x40005000, base + 0x1000, PTE_R)
        is ApiResult.INVALID_STATE
    )
    check_all(sm)


def test_block_refused_while_pages_mapped(sanctum_system):
    """An enclave cannot relinquish a region it still maps from."""
    system = sanctum_system
    kernel, sm = system.kernel, system.sm
    loaded = kernel.load_enclave(_roomy_image())
    eid = loaded.eid
    rid = _offer_region(system, eid)
    base, __ = system.platform.region_range(rid)
    assert sm.accept_resource(eid, ResourceType.DRAM_REGION, rid) is ApiResult.OK
    assert sm.map_enclave_page(eid, 0x40004000, base, PTE_R | PTE_W) is ApiResult.OK
    assert sm.block_resource(eid, ResourceType.DRAM_REGION, rid) is ApiResult.INVALID_STATE
    assert sm.unmap_enclave_page(eid, 0x40004000) is ApiResult.OK
    assert sm.block_resource(eid, ResourceType.DRAM_REGION, rid) is ApiResult.OK
    check_all(sm)


def test_original_image_region_cannot_be_blocked_by_enclave(sanctum_system):
    """The image-backing region always has live mappings (code!), so the
    guard protects the enclave from cutting off its own feet."""
    system = sanctum_system
    from tests.conftest import trivial_enclave_image

    loaded = system.kernel.load_enclave(trivial_enclave_image())
    result = system.sm.block_resource(
        loaded.eid, ResourceType.DRAM_REGION, loaded.rids[0]
    )
    assert result is ApiResult.INVALID_STATE
