"""Reproducibility: equal seeds give bit-identical systems and runs."""

from repro import build_keystone_system, build_sanctum_system
from repro.hw.machine import MachineConfig
from repro.sdk.protocol import run_remote_attestation
from repro.attacks.cache_probe import run_prime_probe_experiment
from tests.conftest import small_config, trivial_enclave_image


def test_same_seed_same_boot_artifacts():
    a = build_sanctum_system(config=small_config())
    b = build_sanctum_system(config=small_config())
    assert a.boot.sm_measurement == b.boot.sm_measurement
    assert a.boot.sm_secret_key == b.boot.sm_secret_key
    assert a.root_public_key == b.root_public_key
    assert a.boot.sm_certificate == b.boot.sm_certificate


def test_same_seed_same_full_protocol_bytes():
    a = run_remote_attestation(build_sanctum_system(config=small_config()))
    b = run_remote_attestation(build_sanctum_system(config=small_config()))
    assert a.report.to_bytes() == b.report.to_bytes()
    assert a.phase_cycles == b.phase_cycles


def test_same_seed_same_attack_observations():
    a = run_prime_probe_experiment(
        build_sanctum_system(llc_partitioned=False), secret=33, reference_secret=8
    )
    b = run_prime_probe_experiment(
        build_sanctum_system(llc_partitioned=False), secret=33, reference_secret=8
    )
    assert a.measured == b.measured and a.baseline == b.baseline


def test_different_seed_different_secrets_same_behaviour():
    """Seeds change key material, never functional outcomes."""
    outcomes = []
    for seed in (11, 22):
        system = build_keystone_system(
            config=MachineConfig(
                n_cores=2, dram_size=32 * 1024 * 1024, llc_sets=256, trng_seed=seed
            )
        )
        out = system.kernel.alloc_buffer(1)
        loaded = system.kernel.load_enclave(trivial_enclave_image(out, value=5))
        system.kernel.enter_and_run(loaded.eid, loaded.tids[0])
        outcomes.append(
            (
                system.machine.memory.read_u32(out),
                system.boot.sm_secret_key,
                system.sm.enclave_measurement(loaded.eid),
            )
        )
    (value_a, key_a, meas_a), (value_b, key_b, meas_b) = outcomes
    assert value_a == value_b == 5
    assert key_a != key_b, "different devices, different keys"
    assert meas_a == meas_b, (
        "measurement depends on the binary and SM build, not on device secrets"
    )


def _architectural_state(system, loaded, out):
    """Everything the decode-cache fast path must not perturb."""
    machine = system.machine
    return {
        "regs": [list(core.regs) for core in machine.cores],
        "pc": [core.pc for core in machine.cores],
        "cycles": [core.cycles for core in machine.cores],
        "retired": [core.instructions_retired for core in machine.cores],
        "global_steps": machine.global_steps,
        "tlb": [(c.tlb.hits, c.tlb.misses, c.tlb.shootdowns) for c in machine.cores],
        "l1": [(c.l1.stats.hits, c.l1.stats.misses) for c in machine.cores],
        "measurement": system.sm.enclave_measurement(loaded.eid),
        "result": machine.memory.read_u32(out),
    }


def test_decode_cache_is_architecturally_invisible():
    """Same run with and without the fast path: bit-identical state.

    The decoded-instruction cache and translation memo are host-speed
    optimizations only; register state, cycle counts, cache/TLB stats,
    and enclave measurements must not depend on them.
    """
    def run(decode_cache_enabled):
        config = small_config()
        config.decode_cache_enabled = decode_cache_enabled
        system = build_sanctum_system(config=config)
        out = system.kernel.alloc_buffer(1)
        loaded = system.kernel.load_enclave(trivial_enclave_image(out, value=7))
        system.kernel.enter_and_run(loaded.eid, loaded.tids[0])
        return _architectural_state(system, loaded, out)

    assert run(False) == run(True)


def test_decode_cache_invisible_under_tlb_pressure():
    """The translation memo stays exact even across TLB evictions.

    A loop touching more pages than the TLB holds forces capacity
    evictions, exercising the memo's generation-resync path; cycles and
    TLB hit/miss counts must still match the reference interpreter.
    """
    def run(decode_cache_enabled):
        config = small_config()
        config.tlb_entries = 8
        config.decode_cache_enabled = decode_cache_enabled
        system = build_sanctum_system(config=config)
        base = system.kernel.alloc_buffer(24)
        core, _events = system.kernel.run_user_program(
            f"""
entry:
    li   t0, {base}
    li   t1, {base + 24 * 4096}
    li   t2, 4096
loop:
    sw   t2, 0(t0)
    lw   a1, 0(t0)
    add  t0, t0, t2
    bne  t0, t1, loop
    ecall
"""
        )
        machine = system.machine
        return {
            "regs": list(core.regs),
            "cycles": [c.cycles for c in machine.cores],
            "retired": [c.instructions_retired for c in machine.cores],
            "tlb": [(c.tlb.hits, c.tlb.misses) for c in machine.cores],
            "l1": [(c.l1.stats.hits, c.l1.stats.misses) for c in machine.cores],
            "global_steps": machine.global_steps,
        }

    assert run(False) == run(True)


def test_trace_cache_is_architecturally_invisible():
    """Same run with and without the superblock trace cache.

    The decode cache stays ON in both runs, so this isolates exactly
    what the trace cache and batched stepping add: compiled-uop
    execution and multi-pass loop batching must leave registers,
    cycles, TLB/L1 statistics, measurements, and global_steps
    bit-identical.
    """
    def run(trace_cache_enabled):
        config = small_config()
        config.trace_cache_enabled = trace_cache_enabled
        system = build_sanctum_system(config=config)
        out = system.kernel.alloc_buffer(1)
        # Enough loop iterations to cross the trace-compilation
        # threshold many times over.
        loaded = system.kernel.load_enclave(
            trivial_enclave_image(out, value=7, spin_iterations=400)
        )
        system.kernel.enter_and_run(loaded.eid, loaded.tids[0])
        return _architectural_state(system, loaded, out)

    assert run(False) == run(True)


def test_trace_cache_invisible_with_memory_traffic_and_tlb_pressure():
    """Hot loops with loads/stores across more pages than the TLB holds.

    Memory micro-ops inside a trace follow the full translated path
    (page walks, TLB insertions/evictions, L1/LLC timing); TLB
    evictions mid-trace must abort the trace at an exact instruction
    boundary.  The resulting counts must match the reference
    interpreter bit for bit.
    """
    def run(trace_cache_enabled):
        config = small_config()
        config.tlb_entries = 8
        config.trace_cache_enabled = trace_cache_enabled
        system = build_sanctum_system(config=config)
        base = system.kernel.alloc_buffer(24)
        core, _events = system.kernel.run_user_program(
            f"""
entry:
    li   t0, {base}
    li   t1, {base + 24 * 4096}
    li   t2, 4096
    li   a2, 0
    li   a3, 8
outer:
    li   t0, {base}
loop:
    sw   t2, 0(t0)
    lw   a1, 0(t0)
    add  t0, t0, t2
    bne  t0, t1, loop
    addi a2, a2, 1
    bne  a2, a3, outer
    ecall
"""
        )
        machine = system.machine
        return {
            "regs": list(core.regs),
            "cycles": [c.cycles for c in machine.cores],
            "retired": [c.instructions_retired for c in machine.cores],
            "tlb": [(c.tlb.hits, c.tlb.misses) for c in machine.cores],
            "l1": [(c.l1.stats.hits, c.l1.stats.misses) for c in machine.cores],
            "global_steps": machine.global_steps,
        }

    assert run(False) == run(True)


def test_run_twice_on_one_system_is_stable():
    """Within one system, repeating a workload gives identical events."""
    system = build_sanctum_system(config=small_config())
    image = trivial_enclave_image()

    def run_once():
        loaded = system.kernel.load_enclave(image)
        events = system.kernel.enter_and_run(loaded.eid, loaded.tids[0])
        system.kernel.destroy_enclave(loaded.eid)
        return [(e.kind, e.cause, e.tval) for e in events]

    assert run_once() == run_once()
