"""Dynamic enclave memory (§V-B): accept at runtime, use privately.

"This does not mean enclaves are static.  Instead, an enclave may
collaborate with the OS to implement dynamic behaviors like
re-allocation of resources" — here the full loop runs with the enclave
side *in-VM*: the OS offers a freshly cleaned region, the running
enclave accepts it with an ``ACCEPT_RESOURCE`` ecall, stores a secret
into it (physically protected, addressed through identity mappings
outside evrange), and later blocks it back for the OS to reclaim.
"""

import pytest

from repro import image_from_assembly
from repro.errors import ApiResult
from repro.hw.core import DOMAIN_UNTRUSTED
from repro.sm.api import EnclaveEcall
from repro.sm.events import OsEventKind
from repro.sm.invariants import check_all
from repro.sm.resources import ResourceState, ResourceType

OS = DOMAIN_UNTRUSTED


def _dynamic_enclave_source(shared: int) -> str:
    accept = int(EnclaveEcall.ACCEPT_RESOURCE)
    block = int(EnclaveEcall.BLOCK_RESOURCE)
    exit_call = int(EnclaveEcall.EXIT_ENCLAVE)
    return f"""
_start:
    li   t0, phase
    lw   t1, 0(t0)
    bne  t1, zero, phase1

phase0:                              # accept the offered region, stash a secret
    lw   a2, {shared}(zero)          # rid from the OS
    li   a0, {accept}
    li   a1, 1                       # resource type: DRAM_REGION
    ecall
    bne  a0, zero, fail
    lw   t2, {shared + 0x8}(zero)    # base paddr of the new region
    li   t1, 0x5EC12E7
    sw   t1, 0(t2)                   # secret into the accepted memory
    li   t0, phase
    li   t1, 1
    sw   t1, 0(t0)
    jal  zero, ok

phase1:                              # read the secret back, return the region
    lw   t2, {shared + 0x8}(zero)
    lw   t1, 0(t2)
    sw   t1, {shared + 0xC}(zero)    # prove we still see it
    lw   a2, {shared}(zero)
    li   a0, {block}
    li   a1, 1
    ecall
    bne  a0, zero, fail

ok:
    li   t0, 1
    sw   t0, {shared + 0x4}(zero)
    li   a0, {exit_call}
    ecall

fail:
    addi t0, a0, 0x100
    sw   t0, {shared + 0x4}(zero)
    li   a0, {exit_call}
    ecall

    .align 8
phase:
    .word 0
"""


def test_enclave_accepts_and_returns_memory_at_runtime(sanctum_system):
    system = sanctum_system
    sm, kernel = system.sm, system.kernel
    shared = kernel.alloc_buffer(1)
    image = image_from_assembly(_dynamic_enclave_source(shared), entry_symbol="_start")
    loaded = kernel.load_enclave(image)

    # OS prepares and *offers* a region to the (running) enclave.
    rid = kernel._donatable_regions.pop(0)
    assert sm.block_resource(OS, ResourceType.DRAM_REGION, rid) is ApiResult.OK
    assert sm.clean_resource(OS, ResourceType.DRAM_REGION, rid) is ApiResult.OK
    assert sm.grant_resource(OS, ResourceType.DRAM_REGION, rid, loaded.eid) is ApiResult.OK
    record = sm.state.resources.get(ResourceType.DRAM_REGION, rid)
    assert record.state is ResourceState.OFFERED, "a running enclave must accept"
    base, size = system.platform.region_range(rid)
    kernel.write_shared(shared, rid.to_bytes(4, "little"))
    kernel.write_shared(shared + 0x8, base.to_bytes(4, "little"))

    # Phase 0: accept + stash a secret.
    events = kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert events[0].kind is OsEventKind.ENCLAVE_EXIT
    assert kernel.machine.memory.read_u32(shared + 4) == 1
    assert record.owner == loaded.eid and record.state is ResourceState.OWNED

    # While owned by the enclave: the OS cannot read the secret.
    from repro.kernel.adversary import MaliciousOs

    probe = MaliciousOs(kernel).probe_physical(base)
    assert not probe.succeeded
    check_all(sm)

    # Phase 1: enclave reads its secret back and blocks the region.
    events = kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert events[0].kind is OsEventKind.ENCLAVE_EXIT
    assert kernel.machine.memory.read_u32(shared + 4) == 1
    assert kernel.machine.memory.read_u32(shared + 0xC) == 0x5EC12E7
    assert record.state is ResourceState.BLOCKED

    # OS reclaims; the cleaning scrubs the secret before reuse.
    assert sm.clean_resource(OS, ResourceType.DRAM_REGION, rid) is ApiResult.OK
    assert kernel.machine.memory.read_u32(base) == 0
    assert sm.grant_resource(OS, ResourceType.DRAM_REGION, rid, OS) is ApiResult.OK
    kernel._donatable_regions.insert(0, rid)
    check_all(sm)


def test_enclave_cannot_accept_unoffered_region(sanctum_system):
    """ACCEPT_RESOURCE from the enclave fails unless the OS offered it."""
    system = sanctum_system
    kernel = system.kernel
    shared = kernel.alloc_buffer(1)
    image = image_from_assembly(_dynamic_enclave_source(shared), entry_symbol="_start")
    loaded = kernel.load_enclave(image)
    rid = kernel._donatable_regions[0]  # OS-owned, never offered
    base, __ = system.platform.region_range(rid)
    kernel.write_shared(shared, rid.to_bytes(4, "little"))
    kernel.write_shared(shared + 0x8, base.to_bytes(4, "little"))
    kernel.enter_and_run(loaded.eid, loaded.tids[0])
    status = kernel.machine.memory.read_u32(shared + 4)
    assert status == 0x100 + int(ApiResult.INVALID_STATE)
