"""Paper-scale geometry and true multi-core concurrency."""

import pytest

from repro import build_sanctum_system, image_from_assembly
from repro.hw.machine import MachineConfig
from repro.sm.api import EnclaveEcall
from repro.sm.events import OsEventKind
from repro.sm.invariants import check_all
from tests.conftest import trivial_enclave_image


def test_paper_scale_sanctum_geometry():
    """§VII-A: 64 DRAM regions of 32 MB (2 GB) — constructible and usable.

    Physical memory is sparse, so the full geometry costs only what is
    touched.
    """
    system = build_sanctum_system(
        config=MachineConfig(n_cores=4, dram_size=2 * 1024 * 1024 * 1024, llc_sets=512),
        n_regions=64,
    )
    assert system.platform.region_size == 32 * 1024 * 1024
    assert len(system.platform.region_ids()) == 64
    out = system.kernel.alloc_buffer(1)
    loaded = system.kernel.load_enclave(trivial_enclave_image(out, value=64))
    events = system.kernel.enter_and_run(loaded.eid, loaded.tids[0])
    assert events[0].kind is OsEventKind.ENCLAVE_EXIT
    assert system.machine.memory.read_u32(out) == 64
    # The donated region really is one of the 32 MB units.
    assert loaded.region_size == 32 * 1024 * 1024
    check_all(system.sm)


def test_concurrent_mail_across_cores(sanctum_system):
    """Two enclaves on two cores exchange mail while both are running.

    The producer polls ``send_mail`` until the consumer's ``accept``
    lands; the consumer polls ``get_mail`` until delivery — a real
    concurrent rendezvous through SM mailboxes, interleaved by the
    machine's round-robin.
    """
    system = sanctum_system
    kernel = system.kernel
    shared = kernel.alloc_buffer(1)
    send, get_mail, accept, exit_call = (
        int(EnclaveEcall.SEND_MAIL),
        int(EnclaveEcall.GET_MAIL),
        int(EnclaveEcall.ACCEPT_MAIL),
        int(EnclaveEcall.EXIT_ENCLAVE),
    )
    producer_source = f"""
_start:
    lw   gp, {shared}(zero)          # consumer eid
try_send:
    li   a0, {send}
    add  a1, gp, zero
    li   a2, message
    li   a3, 12
    ecall
    bne  a0, zero, try_send          # retry until the consumer accepts
    li   a0, {exit_call}
    ecall
    .align 8
message:
    .ascii "ping-pong-42"
"""
    consumer_source = f"""
_start:
    lw   gp, {shared + 4}(zero)      # producer eid
    li   a0, {accept}
    li   a1, 0
    add  a2, gp, zero
    ecall
try_get:
    li   a0, {get_mail}
    li   a1, 0
    li   a2, msg_buf
    li   a3, sender_buf
    ecall
    bne  a0, zero, try_get           # poll until the mail lands
    li   t0, 0
export:
    li   t1, msg_buf
    add  t1, t1, t0
    lbu  t2, 0(t1)
    li   t1, {shared + 0x10}
    add  t1, t1, t0
    sb   t2, 0(t1)
    addi t0, t0, 1
    li   t1, 12
    bltu t0, t1, export
    li   a0, {exit_call}
    ecall
    .align 8
msg_buf:
    .zero 256
sender_buf:
    .zero 64
"""
    producer = kernel.load_enclave(
        image_from_assembly(producer_source, evrange_base=0x44000000, entry_symbol="_start")
    )
    consumer = kernel.load_enclave(
        image_from_assembly(consumer_source, evrange_base=0x48000000, entry_symbol="_start")
    )
    kernel.write_shared(shared, consumer.eid.to_bytes(4, "little"))
    kernel.write_shared(shared + 4, producer.eid.to_bytes(4, "little"))

    from repro.errors import ApiResult
    from repro.hw.core import DOMAIN_UNTRUSTED

    assert system.sm.enter_enclave(DOMAIN_UNTRUSTED, producer.eid, producer.tids[0], 0) is ApiResult.OK
    assert system.sm.enter_enclave(DOMAIN_UNTRUSTED, consumer.eid, consumer.tids[0], 1) is ApiResult.OK
    system.machine.run(max_steps=500_000)
    exits = [e for c in (0, 1) for e in system.sm.os_events.drain(c)]
    assert sorted(e.kind.value for e in exits) == ["enclave_exit", "enclave_exit"]
    assert kernel.read_shared(shared + 0x10, 12) == b"ping-pong-42"
    check_all(system.sm)


def test_loader_failure_mid_load_leaves_consistent_state(sanctum_system):
    """An image whose evrange is too small fails cleanly mid-load."""
    from repro.kernel.loader import EnclaveImage, EnclaveSegment
    from repro.hw.paging import PTE_R, PTE_W, PTE_X
    from repro.kernel.os_model import OsError

    # Segments fit evrange, but entry_pc points outside it -> the SM
    # refuses create_thread after pages were already loaded.
    bad = EnclaveImage(
        evrange_base=0x40000000,
        evrange_size=0x2000,
        segments=(EnclaveSegment(0x40000000, b"\x01" * 16, PTE_R | PTE_W | PTE_X),),
        entry_pc=0x50000000,
        entry_sp=0x40002000,
    )
    with pytest.raises(OsError):
        sanctum_system.kernel.load_enclave(bad)
    # The aborted enclave is still LOADING; the OS deletes and reclaims.
    eids = list(sanctum_system.sm.state.enclaves)
    from repro.hw.core import DOMAIN_UNTRUSTED
    from repro.errors import ApiResult
    from repro.sm.resources import ResourceType

    assert len(eids) == 1
    assert sanctum_system.sm.delete_enclave(DOMAIN_UNTRUSTED, eids[0]) is ApiResult.OK
    check_all(sanctum_system.sm)
